"""Tests for the machine-readable benchmark record writer."""

import json

import pytest

from repro.bench.record import (RECORD_SCHEMA_VERSION, BenchRecorder,
                                BenchRecordError, load_record, measure)


class TestMeasure:
    def test_returns_best_of_positive_timing(self):
        calls = []
        seconds = measure(lambda: calls.append(1), repeats=3, warmup=2)
        assert seconds >= 0.0
        assert len(calls) == 5  # warmup + repeats


class TestBenchRecorder:
    def test_add_derives_throughput(self):
        recorder = BenchRecorder("substrate")
        entry = recorder.add("fwd/grid64/batch8", 0.5, grid=64, batch=8)
        assert entry == {"seconds": 0.5, "grid": 64, "batch": 8,
                         "throughput_per_second": 16.0}

    def test_add_without_batch_has_no_throughput(self):
        recorder = BenchRecorder("substrate")
        entry = recorder.add("flow_generation/grid32", 0.25, grid=32,
                             iterations=10)
        assert entry == {"seconds": 0.25, "grid": 32, "iterations": 10.0}

    def test_timeit_records_measured_entry(self):
        recorder = BenchRecorder("substrate")
        recorder.timeit("noop", lambda: None, batch=4, repeats=2)
        entry = recorder.entries["noop"]
        assert entry["seconds"] >= 0.0
        assert entry["batch"] == 4

    def test_write_round_trips_as_strict_json(self, tmp_path):
        recorder = BenchRecorder("substrate")
        recorder.add("b/grid64/batch1", 0.1, grid=64, batch=1)
        recorder.add("a/grid64/batch1", 0.2, grid=64, batch=1)
        path = recorder.write(str(tmp_path / "BENCH_test.json"))
        record = load_record(path)
        assert record["schema"] == RECORD_SCHEMA_VERSION
        assert record["benchmark"] == "substrate"
        assert list(record["entries"]) == ["a/grid64/batch1",
                                           "b/grid64/batch1"]
        assert "platform" in record["machine"]
        # Strict JSON: re-parse with NaN literals rejected.
        with open(path, "r", encoding="utf-8") as fh:
            json.load(fh, parse_constant=lambda t: pytest.fail(
                f"non-strict literal {t!r}"))

    def test_write_is_atomic_replacement(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        first = BenchRecorder("substrate")
        first.add("x", 1.0)
        first.write(path)
        second = BenchRecorder("substrate")
        second.add("y", 2.0)
        second.write(path)
        record = load_record(path)
        assert list(record["entries"]) == ["y"]

    def test_checked_in_substrate_record_is_loadable(self):
        import os
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        path = os.path.join(root, "BENCH_substrate.json")
        record = load_record(path)
        assert record["benchmark"] == "substrate"
        assert any(name.startswith("engine_forward/")
                   for name in record["entries"])
        assert any(name.startswith("flow_generation/")
                   for name in record["entries"])


class TestProvenanceStamps:
    """ISSUE 9 satellite: records carry git rev, UTC timestamp and the
    litho config hash, so a BENCH_*.json is traceable to the commit
    and optical model that produced it."""

    def test_git_rev_and_utc_timestamp_stamped(self):
        record = BenchRecorder("substrate").to_dict()
        assert record["git_rev"]  # "unknown" outside a checkout
        assert record["generated_utc"].endswith("Z")
        assert "T" in record["generated_utc"]

    def test_config_hash_included_when_given(self):
        assert "config_hash" not in BenchRecorder("substrate").to_dict()
        stamped = BenchRecorder("substrate", config_hash="cafe0001")
        assert stamped.to_dict()["config_hash"] == "cafe0001"

    def test_stamps_survive_write_and_load(self, tmp_path):
        recorder = BenchRecorder("substrate", config_hash="cafe0001")
        recorder.add("x", 1.0)
        record = load_record(recorder.write(str(tmp_path / "B.json")))
        assert record["config_hash"] == "cafe0001"
        assert record["generated_utc"].endswith("Z")


class TestLoadRecordErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchRecordError, match="not found"):
            load_record(str(tmp_path / "absent.json"))

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(BenchRecordError, match="not valid JSON"):
            load_record(str(path))

    def test_schema_less_record(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"entries": {}}))
        with pytest.raises(BenchRecordError, match="bench schema"):
            load_record(str(path))

    def test_record_without_entries(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": RECORD_SCHEMA_VERSION}))
        with pytest.raises(BenchRecordError, match="no 'entries'"):
            load_record(str(path))

    def test_non_object_record(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(BenchRecordError, match="bench schema"):
            load_record(str(path))