"""Lossless Table2Result JSON round-trip (ISSUE 9 satellite).

The run ledger persists every Table 2 result as ``table2.json``; the
HTML report rebuilds targets and masks from it without re-running
lithography, so the round trip must be exact — bit-exact masks,
clip geometry through the GLP text format, and every evaluation field
including non-finite metrics and EPE hotspots.
"""

import json

import numpy as np
import pytest

from repro.bench import (ExperimentConfig, Pipeline, iccad13_suite,
                         run_table2, train_generators)
from repro.bench.harness import (TABLE2_SCHEMA_VERSION, Table2Result,
                                 _decode_mask, _encode_mask)


@pytest.fixture(scope="module")
def table2():
    pipeline = Pipeline.build(ExperimentConfig.quick())
    generators = train_generators(pipeline)
    clips = iccad13_suite(pipeline.litho)[:2]
    return run_table2(pipeline, generators, clips=clips)


class TestMaskCodec:
    def test_binary_mask_packs_to_bits(self):
        mask = (np.arange(64).reshape(8, 8) % 2).astype(float)
        entry = _encode_mask(mask)
        assert entry["encoding"] == "bits"
        np.testing.assert_array_equal(_decode_mask(entry), mask)

    def test_gray_mask_keeps_float64_exactly(self):
        rng = np.random.default_rng(0)
        mask = rng.random((5, 7))
        entry = _encode_mask(mask)
        assert entry["encoding"] == "f64"
        np.testing.assert_array_equal(_decode_mask(entry), mask)

    def test_non_2d_mask_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            _encode_mask(np.zeros(4))

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError, match="unknown mask encoding"):
            _decode_mask({"encoding": "zip", "shape": [1, 1], "data": ""})


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def reloaded(self, table2):
        # through an actual strict-JSON text round trip, like the file
        payload = json.dumps(table2.to_dict(), sort_keys=True,
                             allow_nan=False)
        return Table2Result.from_dict(json.loads(payload))

    def test_schema_stamped_and_checked(self, table2):
        assert table2.to_dict()["schema"] == TABLE2_SCHEMA_VERSION
        with pytest.raises(ValueError, match="unsupported table2 schema"):
            Table2Result.from_dict({"schema": 999})

    def test_evaluations_identical(self, table2, reloaded):
        assert set(reloaded.columns) == set(table2.columns)
        for method, evals in table2.columns.items():
            for original, copy in zip(evals, reloaded.columns[method]):
                assert copy.as_dict() == original.as_dict()
                assert copy.epe_hotspots == original.epe_hotspots

    def test_masks_bit_exact(self, table2, reloaded):
        for method, masks in table2.masks.items():
            for original, copy in zip(masks, reloaded.masks[method]):
                np.testing.assert_array_equal(copy, original)

    def test_clips_round_trip_through_glp(self, table2, reloaded):
        from repro.geometry import rasterize
        for original, copy in zip(table2.clips, reloaded.clips):
            assert copy.name == original.name
            assert copy.target_area == original.target_area
            assert copy.layout.extent == original.layout.extent
            # GLP text carries ~12 significant digits: coordinates agree
            # to printed precision and the target raster — what the
            # report rebuilds overlays from — is pixel-identical.
            for rect_a, rect_b in zip(original.layout.rects,
                                      copy.layout.rects):
                for coord_a, coord_b in zip(
                        (rect_a.x0, rect_a.y0, rect_a.x1, rect_a.y1),
                        (rect_b.x0, rect_b.y0, rect_b.x1, rect_b.y1)):
                    assert coord_b == pytest.approx(coord_a, rel=1e-11,
                                                    abs=1e-8)
            np.testing.assert_allclose(
                rasterize(copy.layout, 64),
                rasterize(original.layout, 64), atol=1e-9)

    def test_table_stages_and_engine_stats_preserved(self, table2,
                                                     reloaded):
        assert reloaded.table == table2.table
        assert reloaded.stage_seconds == table2.stage_seconds
        assert reloaded.engine_stats == table2.engine_stats
        assert reloaded.pool_stats is None

    def test_averages_survive_round_trip(self, table2, reloaded):
        for method in table2.columns:
            assert reloaded.averages(method) == table2.averages(method)
