"""Unit tests for visualization outputs."""

import numpy as np
import pytest

from repro.bench import (ascii_curve, montage, overlay_comparison, read_pgm,
                         save_gallery, write_pgm)


class TestPGM:
    def test_round_trip(self, tmp_path, rng):
        image = rng.random((12, 20))
        path = str(tmp_path / "img.pgm")
        write_pgm(image, path)
        recovered = read_pgm(path)
        assert recovered.shape == (12, 20)
        assert np.abs(recovered - image).max() <= 1.0 / 255 + 1e-9

    def test_clips_out_of_range(self, tmp_path):
        path = str(tmp_path / "clip.pgm")
        write_pgm(np.array([[-1.0, 2.0]]), path)
        recovered = read_pgm(path)
        np.testing.assert_allclose(recovered, [[0.0, 1.0]])

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(np.zeros((2, 2, 2)), str(tmp_path / "x.pgm"))

    def test_read_rejects_other_formats(self, tmp_path):
        path = tmp_path / "fake.pgm"
        path.write_bytes(b"P6\n1 1\n255\n\x00\x00\x00")
        with pytest.raises(ValueError):
            read_pgm(str(path))

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "img.pgm")
        write_pgm(np.zeros((2, 2)), path)
        assert read_pgm(path).shape == (2, 2)


class TestMontage:
    def test_grid_dimensions(self):
        images = [np.zeros((4, 6))] * 5
        tiled = montage(images, columns=3, pad=1)
        assert tiled.shape == (2 * 4 + 3 * 1, 3 * 6 + 4 * 1)

    def test_content_placed(self):
        a = np.ones((2, 2))
        b = np.zeros((2, 2))
        tiled = montage([a, b], columns=2, pad=0)
        np.testing.assert_allclose(tiled[:, :2], 1.0)
        np.testing.assert_allclose(tiled[:, 2:], 0.0)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            montage([], columns=2)
        with pytest.raises(ValueError):
            montage([np.zeros((2, 2)), np.zeros((3, 3))], columns=2)
        with pytest.raises(ValueError):
            montage([np.zeros((2, 2))], columns=0)


class TestAsciiCurve:
    def test_contains_extremes_and_title(self):
        chart = ascii_curve([1.0, 5.0, 3.0], title="loss", label="step")
        assert "loss" in chart
        assert "5.00" in chart and "1.00" in chart
        assert "step" in chart

    def test_downsamples_long_series(self):
        chart = ascii_curve(list(range(1000)), width=50)
        assert "n=50" in chart

    def test_flat_series(self):
        chart = ascii_curve([2.0, 2.0, 2.0])
        assert "2.00" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_curve([])


class TestOverlay:
    def test_four_levels(self):
        target = np.array([[1, 1, 0, 0]], dtype=float)
        wafer = np.array([[1, 0, 1, 0]], dtype=float)
        overlay = overlay_comparison(target, wafer)
        np.testing.assert_allclose(overlay, [[1.0, 0.33, 0.66, 0.0]])


class TestGallery:
    def test_save_gallery(self, tmp_path):
        rows = [[np.ones((4, 4)), np.zeros((4, 4))],
                [np.zeros((4, 4)), np.ones((4, 4))]]
        path = str(tmp_path / "gallery.pgm")
        save_gallery(rows, path)
        image = read_pgm(path)
        assert image.shape[0] > 8 and image.shape[1] > 8

    def test_unequal_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_gallery([[np.ones((2, 2))], []], str(tmp_path / "g.pgm"))


class TestMontagePartialRows:
    def test_unfilled_cells_keep_pad_value(self):
        tiled = montage([np.ones((2, 2))] * 3, columns=2, pad=0,
                        pad_value=0.25)
        assert tiled.shape == (4, 4)
        np.testing.assert_allclose(tiled[2:, 2:], 0.25)


class TestAsciiCurveLabel:
    def test_label_and_count_rendered(self):
        chart = ascii_curve([3.0, 2.0, 1.0], label="loss")
        assert "loss (n=3)" in chart

    def test_exact_width_series_not_downsampled(self):
        chart = ascii_curve(list(range(70)), width=70)
        assert "(n=70)" in chart
