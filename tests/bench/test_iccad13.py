"""Unit tests for the ICCAD-13-substitute benchmark suite."""

import numpy as np
import pytest

from repro.bench import (PAPER_AVERAGES, PAPER_TABLE2, PAPER_WINDOW_NM,
                         iccad13_suite, make_clip, scaled_area)
from repro.litho import LithoConfig


@pytest.fixture(scope="module")
def suite128():
    return iccad13_suite(LithoConfig.small(128))


class TestPaperData:
    def test_ten_clips_recorded(self):
        assert len(PAPER_TABLE2) == 10
        assert all(name.startswith("iccad13-") for name in PAPER_TABLE2)

    def test_averages_match_per_clip_data(self):
        for method in ("ilt", "gan", "pgan"):
            l2s = [PAPER_TABLE2[n][method][0] for n in PAPER_TABLE2]
            assert abs(np.mean(l2s) - PAPER_AVERAGES[method][0]) < 0.1

    def test_paper_ratios(self):
        """The paper's headline: GAN 0.911/0.993/0.488, PGAN
        0.908/0.981/0.471 relative to ILT."""
        ilt = PAPER_AVERAGES["ilt"]
        pgan = PAPER_AVERAGES["pgan"]
        assert abs(pgan[0] / ilt[0] - 0.908) < 0.001
        assert abs(pgan[2] / ilt[2] - 0.471) < 0.001


class TestScaledArea:
    def test_identity_at_paper_window(self):
        assert scaled_area(1, PAPER_WINDOW_NM) == PAPER_TABLE2["iccad13-01"]["area"]

    def test_quadratic_scaling(self):
        assert scaled_area(1, PAPER_WINDOW_NM / 2) == pytest.approx(
            PAPER_TABLE2["iccad13-01"]["area"] / 4)


class TestMakeClip:
    def test_invalid_id(self):
        with pytest.raises(ValueError):
            make_clip(0)
        with pytest.raises(ValueError):
            make_clip(11)

    def test_deterministic(self):
        config = LithoConfig.small(64)
        a = make_clip(3, config)
        b = make_clip(3, config)
        assert a.layout.rects == b.layout.rects

    def test_clip_fits_window(self, suite128):
        for clip in suite128:
            clip.layout.validate()


class TestSuite:
    def test_names_ordered(self, suite128):
        names = [c.name for c in suite128]
        assert names == [f"iccad13-{i:02d}" for i in range(1, 11)]

    def test_areas_match_table2_at_128(self, suite128):
        """At the default benchmark grid the synthesized union areas
        must track the scaled Table 2 areas."""
        for clip in suite128:
            assert clip.area_error < 0.1, clip.name

    def test_structure_not_degenerate_at_128(self, suite128):
        assert np.mean([len(c.layout) for c in suite128]) >= 3

    def test_relative_clip_sizes_preserved(self, suite128):
        """iccad13-09 is the paper's largest clip, iccad13-04 the
        smallest: the substitutes must preserve that ordering."""
        areas = {c.name: c.layout.pattern_area for c in suite128}
        assert max(areas, key=areas.get) == "iccad13-09"
        assert min(areas, key=areas.get) == "iccad13-04"

    def test_clips_disjoint_from_training_seeds(self, suite128, litho64):
        from repro.layoutgen import SyntheticDataset
        dataset = SyntheticDataset(LithoConfig.small(128), size=3, seed=0)
        train_rects = {tuple(dataset.layout(i).rects) for i in range(3)}
        bench_rects = {tuple(c.layout.rects) for c in suite128}
        assert not (train_rects & bench_rects)
