"""Unit and property tests for the layout topology synthesizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import DesignRuleChecker, DesignRules
from repro.layoutgen import LayoutSynthesizer, TopologyConfig


@pytest.fixture(scope="module")
def synthesizer():
    return LayoutSynthesizer(TopologyConfig(extent=1024.0))


class TestTopologyConfig:
    def test_defaults_use_table1_rules(self):
        config = TopologyConfig()
        assert config.rules == DesignRules.iccad32nm()

    @pytest.mark.parametrize("kwargs", [
        {"extent": 100.0},  # smaller than margins + CD
        {"track_skip_probability": 1.0},
        {"max_width_factor": 0.5},
        {"min_segment_factor": 5.0, "max_segment_factor": 2.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TopologyConfig(**kwargs)


class TestGeneration:
    def test_deterministic_for_seed(self, synthesizer):
        a = synthesizer.generate(np.random.default_rng(42))
        b = synthesizer.generate(np.random.default_rng(42))
        assert a.rects == b.rects

    def test_never_empty(self, synthesizer):
        for seed in range(30):
            clip = synthesizer.generate(np.random.default_rng(seed))
            assert len(clip) >= 1

    def test_shapes_inside_window(self, synthesizer):
        for seed in range(10):
            clip = synthesizer.generate(np.random.default_rng(seed))
            clip.validate()

    def test_margin_respected(self):
        config = TopologyConfig(extent=1024.0, margin=100.0,
                                stub_probability=0.0)
        synth = LayoutSynthesizer(config)
        for seed in range(10):
            clip = synth.generate(np.random.default_rng(seed))
            box = clip.bounding_box()
            assert box.x0 >= 100.0 - 1e-9 and box.x1 <= 924.0 + 1e-9
            assert box.y0 >= 100.0 - 1e-9 and box.y1 <= 924.0 + 1e-9

    @given(st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_design_rule_clean(self, seed):
        """Every synthesized clip must pass the Table 1 checker — the
        paper's library is generated under these rules by construction."""
        synth = LayoutSynthesizer(TopologyConfig(extent=1024.0))
        clip = synth.generate(np.random.default_rng(seed))
        checker = DesignRuleChecker(DesignRules.iccad32nm())
        assert checker.check(clip) == []

    def test_widths_at_least_cd(self, synthesizer):
        cd = DesignRules.iccad32nm().critical_dimension
        for seed in range(10):
            clip = synthesizer.generate(np.random.default_rng(seed))
            for rect in clip:
                assert rect.min_dimension >= cd - 1e-9

    def test_both_orientations_occur(self, synthesizer):
        horizontal = vertical = 0
        for seed in range(30):
            clip = synthesizer.generate(np.random.default_rng(seed))
            primary = sum(1 for r in clip if r.is_horizontal)
            if primary >= len(clip) / 2:
                horizontal += 1
            else:
                vertical += 1
        assert horizontal > 0 and vertical > 0

    def test_density_responds_to_skip_probability(self):
        dense = LayoutSynthesizer(TopologyConfig(extent=1024.0,
                                                 track_skip_probability=0.0))
        sparse = LayoutSynthesizer(TopologyConfig(extent=1024.0,
                                                  track_skip_probability=0.7))
        dense_density = np.mean([
            dense.generate(np.random.default_rng(s)).density
            for s in range(10)])
        sparse_density = np.mean([
            sparse.generate(np.random.default_rng(s)).density
            for s in range(10)])
        assert dense_density > sparse_density


class TestBatch:
    def test_batch_count_and_names(self, synthesizer):
        clips = synthesizer.generate_batch(5, seed=7, name_prefix="lib")
        assert len(clips) == 5
        assert clips[0].name == "lib-0000"
        assert clips[4].name == "lib-0004"

    def test_batch_instances_differ(self, synthesizer):
        clips = synthesizer.generate_batch(4, seed=7)
        layouts = {tuple(c.rects) for c in clips}
        assert len(layouts) > 1

    def test_batch_reproducible(self, synthesizer):
        a = synthesizer.generate_batch(3, seed=9)
        b = synthesizer.generate_batch(3, seed=9)
        assert all(x.rects == y.rects for x, y in zip(a, b))
