"""Chip-scale synthetic layout generator."""

import pytest

from repro.layoutgen import ChipConfig, synthesize_chip
from repro.layoutgen.topology import TopologyConfig


class TestChipConfig:
    def test_extent(self):
        assert ChipConfig(cells=3, cell_extent=256.0).extent == 768.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChipConfig(cells=0)
        with pytest.raises(ValueError):
            ChipConfig(cell_extent=0.0)
        with pytest.raises(ValueError):
            ChipConfig(fill_probability=1.5)
        with pytest.raises(ValueError):
            ChipConfig(spanning_wire_probability=-0.1)
        with pytest.raises(ValueError):
            ChipConfig(wire_width=-1.0)

    def test_cell_topology_margin_scales_down(self):
        # Default template keeps 120 nm margins for big cells ...
        assert ChipConfig(cell_extent=2048.0).cell_topology().margin == 120.0
        # ... but shrinks them for single-tile cells so synthesis
        # still has room between the keep-out borders.
        small = ChipConfig(cell_extent=256.0).cell_topology()
        assert small.margin == 32.0
        assert small.extent == 256.0

    def test_explicit_topology_extent_is_replaced(self):
        template = TopologyConfig(extent=1000.0, margin=40.0)
        config = ChipConfig(cell_extent=512.0, topology=template)
        topology = config.cell_topology()
        assert topology.extent == 512.0
        assert topology.margin == 40.0


class TestSynthesizeChip:
    def test_deterministic_in_seed(self):
        config = ChipConfig(cells=2, cell_extent=256.0)
        a = synthesize_chip(config, seed=11)
        b = synthesize_chip(config, seed=11)
        c = synthesize_chip(config, seed=12)
        assert a.rects == b.rects
        assert a.rects != c.rects

    def test_layout_is_valid_and_contained(self):
        chip = synthesize_chip(ChipConfig(cells=3, cell_extent=256.0),
                               seed=1)
        chip.validate()
        assert chip.extent == 768.0

    def test_spanning_wires_cross_cell_boundaries(self):
        config = ChipConfig(cells=2, cell_extent=256.0,
                            fill_probability=0.0,
                            spanning_wire_probability=1.0)
        chip = synthesize_chip(config, seed=0)
        # No cells filled: every rect is a spanning wire crossing the
        # single internal boundary at 256 nm.
        assert len(chip) == 2
        boundary = 256.0
        assert any(r.x0 < boundary < r.x1 for r in chip.rects)
        assert any(r.y0 < boundary < r.y1 for r in chip.rects)

    def test_fill_probability_zero_and_wire_probability_zero(self):
        chip = synthesize_chip(
            ChipConfig(cells=3, cell_extent=256.0, fill_probability=0.0,
                       spanning_wire_probability=0.0), seed=0)
        assert len(chip) == 0

    def test_fill_probability_sparsifies(self):
        config = ChipConfig(cells=4, cell_extent=256.0)
        dense = synthesize_chip(config, seed=2)
        sparse = synthesize_chip(
            ChipConfig(cells=4, cell_extent=256.0, fill_probability=0.2,
                       spanning_wire_probability=0.0), seed=2)
        assert len(sparse) < len(dense)

    def test_explicit_wire_width(self):
        chip = synthesize_chip(
            ChipConfig(cells=2, cell_extent=256.0, fill_probability=0.0,
                       wire_width=20.0), seed=0)
        widths = [min(r.x1 - r.x0, r.y1 - r.y0) for r in chip.rects]
        assert widths == pytest.approx([20.0] * len(chip))
        assert len(chip) > 0

    def test_wire_width_must_fit_channel(self):
        with pytest.raises(ValueError):
            synthesize_chip(ChipConfig(cells=2, cell_extent=256.0,
                                       wire_width=64.0))

    def test_cells_regenerate_independently(self):
        """Child seeds are spawned per cell slot, so an identical cell
        grid with the same seed places identical geometry per cell."""
        base = synthesize_chip(
            ChipConfig(cells=2, cell_extent=256.0,
                       spanning_wire_probability=0.0), seed=7)
        again = synthesize_chip(
            ChipConfig(cells=2, cell_extent=256.0,
                       spanning_wire_probability=0.0), seed=7)
        assert base.rects == again.rects
        cell00 = [r for r in base.rects if r.x1 <= 256.0 and r.y1 <= 256.0]
        assert cell00  # the seed fills cell (0, 0)


def test_chip_rasterizes_beyond_engine_grids():
    chip = synthesize_chip(ChipConfig(cells=3, cell_extent=256.0), seed=3)
    from repro.geometry import rasterize

    grid = int(round(chip.extent / 8.0))
    image = rasterize(chip, grid)
    assert image.shape == (grid, grid)
    assert image.max() > 0.0
