"""Unit tests for the synthetic training dataset."""

import numpy as np
import pytest

from repro.ilt import ILTConfig
from repro.layoutgen import SyntheticDataset


@pytest.fixture(scope="module")
def dataset(litho32, kernels32):
    return SyntheticDataset(litho32, size=5, seed=11, kernels=kernels32,
                            ilt_config=ILTConfig(max_iterations=20))


class TestDataset:
    def test_size_validation(self, litho32):
        with pytest.raises(ValueError):
            SyntheticDataset(litho32, size=0)

    def test_len(self, dataset):
        assert len(dataset) == 5

    def test_index_bounds(self, dataset):
        with pytest.raises(IndexError):
            dataset.target(5)
        with pytest.raises(IndexError):
            dataset.layout(-1)

    def test_targets_binary_on_grid(self, dataset):
        target = dataset.target(0)
        assert target.shape == (32, 32)
        assert set(np.unique(target)) <= {0.0, 1.0}

    def test_layout_extent_matches_litho_window(self, dataset, litho32):
        assert dataset.layout(0).extent == litho32.extent_nm

    def test_lazy_caching_returns_same_arrays(self, dataset):
        assert dataset.target(1) is dataset.target(1)
        assert dataset.reference_mask(1) is dataset.reference_mask(1)

    def test_instances_differ(self, dataset):
        assert not np.array_equal(dataset.target(0), dataset.target(2))

    def test_reference_mask_prints_near_target(self, dataset, sim32):
        """The ILT ground truth must actually be a good mask."""
        target = dataset.target(0)
        mask = dataset.reference_mask(0)
        wafer = sim32.wafer_image(mask)
        mismatch = np.abs(wafer - target).sum()
        assert mismatch < 0.25 * target.sum() + 16

    def test_pair(self, dataset):
        pair = dataset.pair(2)
        np.testing.assert_array_equal(pair.target, dataset.target(2))
        np.testing.assert_array_equal(pair.mask, dataset.reference_mask(2))

    def test_batch_shapes(self, dataset):
        targets = dataset.targets_batch([0, 1, 2])
        assert targets.shape == (3, 1, 32, 32)
        targets, masks = dataset.pairs_batch([0, 1])
        assert targets.shape == (2, 1, 32, 32)
        assert masks.shape == (2, 1, 32, 32)

    def test_minibatches_cover_dataset(self, dataset):
        rng = np.random.default_rng(0)
        batches = list(dataset.minibatches(2, rng, epochs=1, with_masks=False))
        assert len(batches) == 2  # 5 // 2, short batch dropped
        for targets, masks in batches:
            assert targets.shape == (2, 1, 32, 32)
            assert masks is None

    def test_minibatches_with_masks(self, dataset):
        rng = np.random.default_rng(0)
        targets, masks = next(dataset.minibatches(2, rng))
        assert masks.shape == (2, 1, 32, 32)

    def test_minibatch_batch_size_validated(self, dataset):
        with pytest.raises(ValueError):
            next(dataset.minibatches(0, np.random.default_rng(0)))

    def test_precompute(self, litho32, kernels32):
        ds = SyntheticDataset(litho32, size=2, seed=3, kernels=kernels32,
                              ilt_config=ILTConfig(max_iterations=5))
        ds.precompute()
        assert all(mask is not None for mask in ds._masks)

    def test_reproducible_across_instances(self, litho32, kernels32):
        a = SyntheticDataset(litho32, size=3, seed=11, kernels=kernels32)
        b = SyntheticDataset(litho32, size=3, seed=11, kernels=kernels32)
        np.testing.assert_array_equal(a.target(2), b.target(2))
