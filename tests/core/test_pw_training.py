"""Corner-robust training: condition stacks through Algorithm 2
pre-training and litho-guided GAN updates."""

import numpy as np
import pytest

from repro.core import (GanOpcConfig, GanOpcTrainer, ILTGuidedPretrainer,
                        MaskGenerator, PairDiscriminator)
from repro.layoutgen import SyntheticDataset
from repro.litho import ConditionSet, LithoEngine


GRID = 32


@pytest.fixture(scope="module")
def dataset(litho32, kernels32):
    return SyntheticDataset(litho32, size=4, seed=7, kernels=kernels32)


@pytest.fixture()
def config():
    return GanOpcConfig.small(GRID)


def _generator(config, seed=0):
    return MaskGenerator(config.generator_channels,
                         rng=np.random.default_rng(seed))


class TestConditionPretraining:
    def test_condition_gradient_shape_and_error(self, litho32, kernels32,
                                                config, dataset):
        conditions = ConditionSet.dose_corners(0.04)
        pretrainer = ILTGuidedPretrainer(_generator(config), litho32, config,
                                         kernels=kernels32,
                                         conditions=conditions)
        targets = dataset.targets_batch([0, 1])
        masks = np.clip(targets + 0.1, 0.0, 1.0)
        errors, gradients = pretrainer.batch_litho_gradient(masks, targets)
        assert errors.shape == (2,)
        assert gradients.shape == (2, 1, GRID, GRID)
        assert np.all(np.isfinite(gradients))

    def test_nominal_conditions_match_plain_pretrainer(self, litho32,
                                                       kernels32, config,
                                                       dataset):
        plain = ILTGuidedPretrainer(_generator(config), litho32, config,
                                    kernels=kernels32)
        nominal = ILTGuidedPretrainer(_generator(config), litho32, config,
                                      kernels=kernels32,
                                      conditions=ConditionSet.nominal())
        targets = dataset.targets_batch([0, 1])
        masks = np.clip(targets + 0.1, 0.0, 1.0)
        e0, g0 = plain.batch_litho_gradient(masks, targets)
        e1, g1 = nominal.batch_litho_gradient(masks, targets)
        np.testing.assert_array_equal(e0, e1)
        np.testing.assert_array_equal(g0, g1)

    def test_training_converges_on_condition_stack(self, litho32, kernels32,
                                                   config, dataset):
        pretrainer = ILTGuidedPretrainer(
            _generator(config), litho32, config, kernels=kernels32,
            conditions=ConditionSet.grid(defocuses=(0.0, 25.0),
                                         doses=(0.98, 1.02)))
        history = pretrainer.train(dataset, 6,
                                   rng=np.random.default_rng(3))
        assert history.iterations == 6
        assert all(np.isfinite(history.litho_error))


class TestLithoGuidedGan:
    def test_litho_weight_validated(self):
        with pytest.raises(ValueError):
            GanOpcConfig(grid=GRID, litho_weight=-1.0)
        with pytest.raises(ValueError):
            GanOpcConfig(grid=GRID, pw_objective="nominal")

    def test_guidance_disabled_by_default(self, config):
        trainer = GanOpcTrainer(
            _generator(config),
            PairDiscriminator(GRID, config.discriminator_channels,
                              rng=np.random.default_rng(1)),
            config)
        assert trainer._litho_engine is None

    def test_guided_step_adds_litho_term(self, litho32, kernels32, config,
                                         dataset):
        from dataclasses import replace
        config = replace(config, litho_weight=0.5, batch_size=2)
        engine = LithoEngine.for_kernels(kernels32)
        conditions = ConditionSet.dose_corners(0.04)

        def build(litho_weight):
            cfg = replace(config, litho_weight=litho_weight)
            return GanOpcTrainer(
                _generator(cfg),
                PairDiscriminator(GRID, cfg.discriminator_channels,
                                  rng=np.random.default_rng(1)),
                cfg, litho_config=litho32, engine=engine,
                conditions=conditions)

        targets, masks = dataset.pairs_batch([0, 1])
        guided = build(0.5)
        assert guided._litho_engine.conditions == conditions
        loss_guided, _, _ = guided.generator_step(targets, masks)
        plain = build(0.0)
        loss_plain, _, _ = plain.generator_step(targets, masks)
        # Identical seeds: the guided loss is the plain loss plus a
        # positive weighted litho error.
        assert loss_guided > loss_plain

    def test_guided_training_runs(self, litho32, kernels32, config,
                                  dataset):
        from dataclasses import replace
        config = replace(config, litho_weight=0.1, batch_size=2,
                         pw_objective="worst")
        trainer = GanOpcTrainer(
            _generator(config),
            PairDiscriminator(GRID, config.discriminator_channels,
                              rng=np.random.default_rng(1)),
            config, litho_config=litho32,
            engine=LithoEngine.for_kernels(kernels32),
            conditions=ConditionSet.dose_corners())
        history = trainer.train(dataset, 3, rng=np.random.default_rng(5))
        assert history.iterations == 3
        assert all(np.isfinite(history.generator_loss))
