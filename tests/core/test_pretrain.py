"""Unit tests for ILT-guided pre-training (Algorithm 2)."""

import numpy as np
import pytest

from repro import nn
from repro.core import (GanOpcConfig, GroundTruthPretrainer,
                        ILTGuidedPretrainer, MaskGenerator)
from repro.ilt import ILTConfig
from repro.ilt.gradient import litho_error_and_gradient_wrt_mask
from repro.layoutgen import SyntheticDataset


@pytest.fixture(scope="module")
def dataset(litho32, kernels32):
    return SyntheticDataset(litho32, size=4, seed=21, kernels=kernels32,
                            ilt_config=ILTConfig(max_iterations=20))


def _config():
    return GanOpcConfig(grid=32, generator_channels=(4, 8),
                        discriminator_channels=(4, 8), batch_size=2)


def _pretrainer(litho32, kernels32, seed=1):
    gen = MaskGenerator((4, 8), rng=np.random.default_rng(seed))
    return ILTGuidedPretrainer(gen, litho32, _config(), kernels=kernels32)


class TestBatchLithoGradient:
    def test_shapes_and_errors(self, litho32, kernels32, dataset):
        pre = _pretrainer(litho32, kernels32)
        targets = dataset.targets_batch([0, 1])
        masks = np.clip(targets + 0.1, 0, 1)
        errors, grads = pre.batch_litho_gradient(masks, targets)
        assert errors.shape == (2,)
        assert grads.shape == masks.shape
        assert np.all(errors >= 0)

    def test_matches_single_instance_gradient(self, litho32, kernels32,
                                              dataset):
        pre = _pretrainer(litho32, kernels32)
        targets = dataset.targets_batch([0])
        masks = np.clip(targets * 0.8 + 0.1, 0, 1)
        errors, grads = pre.batch_litho_gradient(masks, targets)
        expected_e, expected_g = litho_error_and_gradient_wrt_mask(
            masks[0, 0], targets[0, 0], kernels32, litho32.threshold,
            litho32.resist_steepness)
        np.testing.assert_allclose(errors[0], expected_e)
        np.testing.assert_allclose(grads[0, 0], expected_g)


class TestAlgorithm2:
    def test_step_updates_weights(self, litho32, kernels32, dataset):
        pre = _pretrainer(litho32, kernels32)
        before = [p.data.copy() for p in pre.generator.parameters()]
        pre.step(dataset.targets_batch([0, 1]))
        changed = any(not np.array_equal(a, p.data) for a, p in
                      zip(before, pre.generator.parameters()))
        assert changed

    def test_chain_rule_wiring(self, litho32, kernels32, dataset):
        """dE/dM injected at the generator output must reach encoder
        weights — the essence of Algorithm 2 line 8."""
        pre = _pretrainer(litho32, kernels32)
        gen = pre.generator
        targets = dataset.targets_batch([0])
        out = gen(nn.Tensor(targets))
        _, grads = pre.batch_litho_gradient(out.data, targets)
        out.backward(grads)
        first_conv = dict(gen.named_parameters())["encoder.0.0.weight"]
        assert first_conv.grad is not None
        assert np.abs(first_conv.grad).sum() > 0

    def test_training_reduces_litho_error(self, litho32, kernels32, dataset):
        """Pre-training must descend the lithography error — the whole
        point of Algorithm 2."""
        pre = _pretrainer(litho32, kernels32)
        history = pre.train(dataset, iterations=25,
                            rng=np.random.default_rng(3))
        assert history.iterations == 25
        early = np.mean(history.litho_error[:5])
        late = np.mean(history.litho_error[-5:])
        assert late < early

    def test_needs_no_reference_masks(self, litho32, kernels32):
        """Algorithm 2 must work on a dataset whose reference masks were
        never built (litho guidance replaces ground truth)."""
        ds = SyntheticDataset(litho32, size=3, seed=33, kernels=kernels32)
        pre = _pretrainer(litho32, kernels32)
        pre.train(ds, iterations=2, rng=np.random.default_rng(0))
        assert all(mask is None for mask in ds._masks)

    def test_runtime_recorded(self, litho32, kernels32, dataset):
        pre = _pretrainer(litho32, kernels32)
        history = pre.train(dataset, iterations=2,
                            rng=np.random.default_rng(0))
        assert history.runtime_seconds > 0


class TestGroundTruthPretrainer:
    def test_reduces_mask_mse(self, dataset):
        gen = MaskGenerator((4, 8), rng=np.random.default_rng(1))
        pre = GroundTruthPretrainer(gen, _config())
        history = pre.train(dataset, iterations=25,
                            rng=np.random.default_rng(3))
        early = np.mean(history.litho_error[:5])
        late = np.mean(history.litho_error[-5:])
        assert late < early

    def test_step_returns_loss(self, dataset):
        gen = MaskGenerator((4, 8), rng=np.random.default_rng(1))
        pre = GroundTruthPretrainer(gen, _config())
        targets, masks = dataset.pairs_batch([0, 1])
        loss = pre.step(targets, masks)
        assert np.isfinite(loss) and loss >= 0
