"""End-to-end f32 training: dtype discipline and f64 loss parity.

The precision seam is only real if a ``--precision f32`` run computes
in float32 *everywhere* — a single float64 operand silently promotes
downstream GEMMs back to double (numpy's NEP 50 rules) and the "f32"
run quietly pays f64 cost.  These tests pin down:

* every parameter, gradient, optimizer moment and network activation
  stays float32 through pretrain and GAN steps;
* the f32 loss curves track the f64 reference within documented
  tolerance (1e-4 relative over short runs; see DESIGN.md §15);
* ``nn.Tensor`` scalar arithmetic does not promote f32 graphs.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import nn
from repro.core import (GanOpcConfig, GanOpcTrainer, ILTGuidedPretrainer,
                        MaskGenerator, PairDiscriminator)
from repro.layoutgen import SyntheticDataset
from repro.litho import LithoConfig, LithoEngine, build_kernels

GRID = 32
#: Documented f32-vs-f64 loss-curve tolerance (relative), DESIGN.md §15.
F32_CURVE_RTOL = 1e-4


@pytest.fixture(scope="module")
def litho():
    return LithoConfig.small(GRID)


@pytest.fixture(scope="module")
def kernels(litho):
    return build_kernels(litho)


def _config():
    return replace(GanOpcConfig.small(GRID), batch_size=2)


def _generator(precision):
    generator = MaskGenerator(_config().generator_channels,
                              rng=np.random.default_rng(0))
    if precision == "f32":
        nn.to_dtype(generator, np.float32)
    return generator


def _discriminator(precision):
    discriminator = PairDiscriminator(GRID, _config().discriminator_channels,
                                      rng=np.random.default_rng(1))
    if precision == "f32":
        nn.to_dtype(discriminator, np.float32)
    return discriminator


def _pretrain_curve(litho, kernels, precision, iterations=4):
    engine = LithoEngine(kernels=kernels, precision=precision)
    generator = _generator(precision)
    dataset = SyntheticDataset(litho, size=4, seed=0, kernels=kernels)
    pretrainer = ILTGuidedPretrainer(generator, litho, _config(),
                                     engine=engine)
    history = pretrainer.train(dataset, iterations,
                               rng=np.random.default_rng(1))
    return history.litho_error, generator, pretrainer


def _gan_curves(litho, kernels, precision, iterations=4):
    engine = LithoEngine(kernels=kernels, precision=precision)
    generator = _generator(precision)
    discriminator = _discriminator(precision)
    dataset = SyntheticDataset(litho, size=4, seed=0, kernels=kernels)
    trainer = GanOpcTrainer(generator, discriminator, _config(),
                            litho_config=litho, engine=engine)
    history = trainer.train(dataset, iterations,
                            rng=np.random.default_rng(1))
    return history, generator, discriminator, trainer


def _assert_all_f32(module, name):
    for param_name, param in module.named_parameters():
        assert param.data.dtype == np.float32, (name, param_name)
        if param.grad is not None:
            assert param.grad.dtype == np.float32, (name, param_name)
    for sub in module.modules():
        for buf_name, buf in sub._buffers.items():
            assert buf.dtype == np.float32, (name, buf_name)


class TestScalarPromotion:
    """nn.Tensor scalar arithmetic must not promote f32 graphs."""

    def test_scalar_affine_stays_f32(self):
        x = nn.Tensor(np.ones((2, 2), dtype=np.float32))
        assert (2.0 * x - 1.0).data.dtype == np.float32
        assert (x / 3.0).data.dtype == np.float32
        assert (x + 0.5).data.dtype == np.float32

    def test_scalar_affine_stays_f64(self):
        x = nn.Tensor(np.ones((2, 2)))
        assert (2.0 * x - 1.0).data.dtype == np.float64

    def test_leaky_relu_stays_f32(self):
        x = nn.Tensor(np.linspace(-1, 1, 8, dtype=np.float32))
        assert x.leaky_relu(0.2).data.dtype == np.float32

    def test_label_tensors_take_dtype(self):
        assert nn.ones((2, 2), dtype=np.float32).data.dtype == np.float32
        assert nn.zeros((2, 2), dtype=np.float32).data.dtype == np.float32
        assert nn.full((2, 2), 0.9,
                       dtype=np.float32).data.dtype == np.float32

    def test_compute_dtype(self):
        generator = _generator("f32")
        assert nn.compute_dtype(generator) == np.dtype(np.float32)
        assert nn.compute_dtype(_generator("f64")) == np.dtype(np.float64)


class TestPretrainF32:
    def test_everything_stays_f32(self, litho, kernels):
        _, generator, pretrainer = _pretrain_curve(litho, kernels, "f32",
                                                   iterations=2)
        _assert_all_f32(generator, "generator")
        for moment in pretrainer.optimizer._m + pretrainer.optimizer._v:
            assert moment is None or moment.dtype == np.float32

    def test_forward_activation_dtype(self, litho, kernels):
        generator = _generator("f32")
        # f64 input batch must be down-cast at the trainer boundary;
        # the generator itself emits its parameter dtype.
        out = generator(nn.Tensor(np.zeros((1, 1, GRID, GRID),
                                           dtype=np.float32)))
        assert out.data.dtype == np.float32

    def test_loss_curve_matches_f64(self, litho, kernels):
        curve64, _, _ = _pretrain_curve(litho, kernels, "f64")
        curve32, _, _ = _pretrain_curve(litho, kernels, "f32")
        np.testing.assert_allclose(curve32, curve64, rtol=F32_CURVE_RTOL)


class TestGanF32:
    def test_everything_stays_f32(self, litho, kernels):
        _, generator, discriminator, trainer = _gan_curves(
            litho, kernels, "f32", iterations=2)
        _assert_all_f32(generator, "generator")
        _assert_all_f32(discriminator, "discriminator")
        for optimizer in (trainer.optimizer_g, trainer.optimizer_d):
            for moment in optimizer._m + optimizer._v:
                assert moment is None or moment.dtype == np.float32

    def test_loss_curves_match_f64(self, litho, kernels):
        history64, _, _, _ = _gan_curves(litho, kernels, "f64")
        history32, _, _, _ = _gan_curves(litho, kernels, "f32")
        np.testing.assert_allclose(history32.generator_loss,
                                   history64.generator_loss,
                                   rtol=F32_CURVE_RTOL)
        np.testing.assert_allclose(history32.l2_to_reference,
                                   history64.l2_to_reference,
                                   rtol=F32_CURVE_RTOL)

    def test_litho_guided_generator_step_stays_f32(self, litho, kernels):
        engine = LithoEngine(kernels=kernels, precision="f32")
        generator = _generator("f32")
        discriminator = _discriminator("f32")
        config = replace(_config(), litho_weight=0.5)
        trainer = GanOpcTrainer(generator, discriminator, config,
                                litho_config=litho, engine=engine)
        dataset = SyntheticDataset(litho, size=4, seed=0, kernels=kernels)
        targets, masks = dataset.pairs_batch([0, 1])
        trainer.train_iteration(targets, masks)
        _assert_all_f32(generator, "generator")


class TestF64Unchanged:
    """The dtype threading must be invisible to the f64 path."""

    def test_pretrain_step_bit_exact_vs_manual(self, litho, kernels):
        engine = LithoEngine(kernels=kernels, precision="f64")
        dataset = SyntheticDataset(litho, size=4, seed=0, kernels=kernels)
        targets = dataset.targets_batch([0, 1])
        # np.asarray with the module's own dtype is the identity.
        generator = _generator("f64")
        dtype = nn.compute_dtype(generator)
        assert np.asarray(targets, dtype=dtype) is targets
