"""Unit tests for the pair and mask-only discriminators (Section 3.2)."""

import numpy as np
import pytest

from repro import nn
from repro.core import MaskOnlyDiscriminator, PairDiscriminator


def _pair_disc(grid=16, channels=(4, 8), seed=0):
    return PairDiscriminator(grid, channels, rng=np.random.default_rng(seed))


class TestPairDiscriminator:
    def test_output_is_probability_batch(self, rng):
        disc = _pair_disc()
        target = nn.Tensor(rng.random((3, 1, 16, 16)))
        mask = nn.Tensor(rng.random((3, 1, 16, 16)))
        out = disc(target, mask)
        assert out.shape == (3, 1)
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_shape_mismatch_rejected(self, rng):
        disc = _pair_disc()
        with pytest.raises(ValueError):
            disc(nn.Tensor(np.zeros((2, 1, 16, 16))),
                 nn.Tensor(np.zeros((3, 1, 16, 16))))

    def test_grid_not_divisible_rejected(self):
        with pytest.raises(ValueError):
            PairDiscriminator(18, (4, 8))

    def test_empty_channels_rejected(self):
        with pytest.raises(ValueError):
            PairDiscriminator(16, ())

    def test_depends_on_target_channel(self, rng):
        """The pair design must react to the *target*, not only the
        mask — this is what enforces the one-to-one mapping (Eq. 6)."""
        disc = _pair_disc()
        disc.eval()
        mask = nn.Tensor(rng.random((1, 1, 16, 16)))
        target_a = nn.Tensor(rng.random((1, 1, 16, 16)))
        target_b = nn.Tensor(rng.random((1, 1, 16, 16)))
        assert not np.allclose(disc(target_a, mask).data,
                               disc(target_b, mask).data)

    def test_gradient_flows_to_mask(self, rng):
        disc = _pair_disc()
        target = nn.Tensor(rng.random((2, 1, 16, 16)))
        mask = nn.Tensor(rng.random((2, 1, 16, 16)), requires_grad=True)
        disc(target, mask).sum().backward()
        assert mask.grad is not None
        assert np.abs(mask.grad).sum() > 0


class TestMaskOnlyDiscriminator:
    def test_ignores_target(self, rng):
        """The conventional design is blind to the target — the defect
        the paper's Section 3.2 analysis identifies."""
        disc = MaskOnlyDiscriminator(16, (4, 8),
                                     rng=np.random.default_rng(0))
        disc.eval()
        mask = nn.Tensor(rng.random((1, 1, 16, 16)))
        target_a = nn.Tensor(rng.random((1, 1, 16, 16)))
        target_b = nn.Tensor(rng.random((1, 1, 16, 16)))
        np.testing.assert_allclose(disc(target_a, mask).data,
                                   disc(target_b, mask).data)

    def test_output_shape(self, rng):
        disc = MaskOnlyDiscriminator(16, (4, 8),
                                     rng=np.random.default_rng(0))
        out = disc(nn.Tensor(rng.random((4, 1, 16, 16))),
                   nn.Tensor(rng.random((4, 1, 16, 16))))
        assert out.shape == (4, 1)

    def test_shares_trainer_interface(self, rng):
        """Both discriminators accept (target, mask) so GanOpcTrainer
        can run the ablation without special-casing."""
        for cls in (PairDiscriminator, MaskOnlyDiscriminator):
            disc = cls(16, (4,), rng=np.random.default_rng(0))
            out = disc(nn.Tensor(rng.random((2, 1, 16, 16))),
                       nn.Tensor(rng.random((2, 1, 16, 16))))
            assert out.shape == (2, 1)
