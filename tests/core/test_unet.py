"""Unit tests for the U-Net generator extension."""

import numpy as np
import pytest

from repro import nn
from repro.core import (GanOpcConfig, GanOpcTrainer, PairDiscriminator,
                        UNetMaskGenerator)


def _unet(channels=(4, 8), seed=0, residual=2.0):
    return UNetMaskGenerator(channels, residual_scale=residual,
                             rng=np.random.default_rng(seed))


class TestArchitecture:
    def test_output_shape(self):
        gen = _unet()
        out = gen(nn.Tensor(np.zeros((2, 1, 16, 16))))
        assert out.shape == (2, 1, 16, 16)

    def test_three_levels(self):
        gen = _unet(channels=(4, 8, 16))
        out = gen(nn.Tensor(np.zeros((1, 1, 32, 32))))
        assert out.shape == (1, 1, 32, 32)

    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            UNetMaskGenerator(channels=(8,))

    def test_negative_residual_rejected(self):
        with pytest.raises(ValueError):
            UNetMaskGenerator(channels=(4, 8), residual_scale=-1.0)

    def test_rejects_bad_input(self):
        gen = _unet()
        with pytest.raises(ValueError):
            gen(nn.Tensor(np.zeros((16, 16))))

    def test_output_in_unit_interval(self, rng):
        out = _unet()(nn.Tensor(rng.random((2, 1, 16, 16))))
        assert out.data.min() >= 0.0 and out.data.max() <= 1.0

    def test_gradients_reach_every_parameter(self, rng):
        gen = _unet()
        out = gen(nn.Tensor(rng.random((2, 1, 16, 16))))
        (out * out).sum().backward()
        missing = [n for n, p in gen.named_parameters() if p.grad is None]
        assert missing == []

    def test_skip_connections_carry_information(self, rng):
        """Zeroing the bottleneck path must not zero the output's
        dependence on fine input structure (the skips carry it)."""
        gen = _unet(channels=(4, 8), residual=0.0)
        gen.eval()
        a = rng.random((1, 1, 16, 16))
        b = a.copy()
        b[0, 0, 3, 3] += 0.5  # local perturbation
        out_a = gen(nn.Tensor(a)).data
        out_b = gen(nn.Tensor(b)).data
        assert not np.allclose(out_a, out_b)

    def test_generate_inference(self, rng):
        gen = _unet()
        mask = gen.generate(rng.random((16, 16)))
        assert mask.shape == (16, 16)
        assert all(p.grad is None for p in gen.parameters())


class TestDropInCompatibility:
    def test_trains_under_algorithm1(self, litho32, kernels32):
        """The U-Net must be a drop-in generator for GanOpcTrainer."""
        from repro.ilt import ILTConfig
        from repro.layoutgen import SyntheticDataset
        dataset = SyntheticDataset(litho32, size=3, seed=2, kernels=kernels32,
                                   ilt_config=ILTConfig(max_iterations=10))
        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=2)
        gen = _unet(seed=3)
        disc = PairDiscriminator(32, (4, 8), rng=np.random.default_rng(4))
        trainer = GanOpcTrainer(gen, disc, config)
        history = trainer.train(dataset, iterations=3,
                                rng=np.random.default_rng(5))
        assert history.iterations == 3
        assert all(np.isfinite(v) for v in history.generator_loss)

    def test_pretrains_under_algorithm2(self, litho32, kernels32):
        from repro.core import ILTGuidedPretrainer
        from repro.layoutgen import SyntheticDataset
        dataset = SyntheticDataset(litho32, size=3, seed=2, kernels=kernels32)
        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=2)
        gen = _unet(seed=3)
        pre = ILTGuidedPretrainer(gen, litho32, config, kernels=kernels32)
        history = pre.train(dataset, iterations=3,
                            rng=np.random.default_rng(5))
        assert history.iterations == 3

    def test_state_dict_roundtrip(self, rng):
        a = _unet(seed=1)
        b = _unet(seed=2)
        b.load_state_dict(a.state_dict())
        x = nn.Tensor(rng.random((1, 1, 16, 16)))
        a.eval(), b.eval()
        np.testing.assert_allclose(a(x).data, b(x).data)
