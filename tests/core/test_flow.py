"""Unit tests for the end-to-end GAN-OPC flow (Figure 6)."""

import numpy as np
import pytest

from repro.core import FlowResult, GanOpcFlow, MaskGenerator
from repro.ilt import ILTConfig


@pytest.fixture(scope="module")
def flow(litho32, kernels32):
    gen = MaskGenerator((4, 8), rng=np.random.default_rng(1))
    return GanOpcFlow(gen, litho32,
                      ILTConfig(max_iterations=30, patience=3),
                      kernels=kernels32)


def _target(grid=32):
    target = np.zeros((grid, grid))
    target[12:22, 4:28] = 1.0
    return target


class TestFlow:
    def test_result_structure(self, flow):
        result = flow.optimize(_target())
        assert isinstance(result, FlowResult)
        assert result.mask.shape == (32, 32)
        assert result.generated_mask.shape == (32, 32)
        assert set(np.unique(result.mask)) <= {0.0, 1.0}

    def test_runtime_split(self, flow):
        result = flow.optimize(_target())
        assert result.generation_seconds > 0
        assert result.refinement_seconds > 0
        np.testing.assert_allclose(
            result.runtime_seconds,
            result.generation_seconds + result.refinement_seconds)

    def test_refinement_improves_on_generation(self, flow, sim32):
        """The ILT refinement stage must not print worse than the raw
        generated mask."""
        from repro.ilt.gradient import discrete_l2
        target = _target()
        result = flow.optimize(target)
        raw_wafer = sim32.wafer_image((result.generated_mask >= 0.5).astype(float))
        raw_l2 = discrete_l2(raw_wafer, target)
        assert result.l2 <= raw_l2

    def test_refine_iterations_override(self, flow):
        result = flow.optimize(_target(), refine_iterations=5)
        assert result.ilt_result.iterations <= 5

    def test_generation_much_faster_than_refinement(self, flow):
        """The paper: 'feed-forward computation only takes 0.2s ...
        runtime of our flow is almost determined by ILT refinements'."""
        result = flow.optimize(_target())
        assert result.generation_seconds < result.refinement_seconds
