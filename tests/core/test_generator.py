"""Unit tests for the auto-encoder mask generator (Section 3.1)."""

import numpy as np
import pytest

from repro import nn
from repro.core import MaskGenerator


def _generator(channels=(4, 8), residual=2.0, seed=0):
    return MaskGenerator(channels, residual_scale=residual,
                         rng=np.random.default_rng(seed))


class TestArchitecture:
    def test_output_shape_matches_input(self):
        gen = _generator()
        out = gen(nn.Tensor(np.zeros((2, 1, 16, 16))))
        assert out.shape == (2, 1, 16, 16)

    def test_single_level(self):
        gen = _generator(channels=(6,))
        out = gen(nn.Tensor(np.zeros((1, 1, 8, 8))))
        assert out.shape == (1, 1, 8, 8)

    def test_four_levels_paper_architecture(self):
        gen = _generator(channels=(4, 8, 16, 32))
        out = gen(nn.Tensor(np.zeros((1, 1, 32, 32))))
        assert out.shape == (1, 1, 32, 32)

    def test_output_in_unit_interval(self, rng):
        gen = _generator()
        out = gen(nn.Tensor(rng.random((2, 1, 16, 16))))
        assert out.data.min() >= 0.0
        assert out.data.max() <= 1.0

    def test_rejects_bad_input_rank(self):
        gen = _generator()
        with pytest.raises(ValueError):
            gen(nn.Tensor(np.zeros((16, 16))))
        with pytest.raises(ValueError):
            gen(nn.Tensor(np.zeros((1, 2, 16, 16))))

    def test_empty_channels_rejected(self):
        with pytest.raises(ValueError):
            MaskGenerator(channels=())

    def test_negative_residual_rejected(self):
        with pytest.raises(ValueError):
            MaskGenerator(channels=(4,), residual_scale=-1.0)

    def test_deterministic_for_seed(self):
        x = nn.Tensor(np.random.default_rng(9).random((1, 1, 16, 16)))
        a = _generator(seed=5)
        b = _generator(seed=5)
        a.eval(), b.eval()
        np.testing.assert_allclose(a(x).data, b(x).data)


class TestResidualFormulation:
    def test_fresh_generator_approximates_target(self, rng):
        """With the correction (residual) formulation, an untrained
        generator already emits a softened copy of the target — the
        paper's 'mask correction with respect to the target'."""
        gen = _generator(residual=2.0)
        gen.eval()
        target = (rng.random((16, 16)) > 0.7).astype(float)
        mask = gen.generate(target)
        # Correlation with the target should be strongly positive.
        on_mean = mask[target > 0.5].mean() if target.sum() else 1.0
        off_mean = mask[target < 0.5].mean()
        assert on_mean - off_mean > 0.3

    def test_plain_autoencoder_mode(self, rng):
        gen = _generator(residual=0.0)
        gen.eval()
        target = (rng.random((16, 16)) > 0.7).astype(float)
        mask = gen.generate(target)
        assert mask.shape == (16, 16)  # runs; mapping untrained

    def test_gradients_flow_to_all_parameters(self, rng):
        gen = _generator()
        out = gen(nn.Tensor(rng.random((2, 1, 16, 16))))
        (out * out).sum().backward()
        missing = [name for name, p in gen.named_parameters() if p.grad is None]
        assert missing == []


class TestGenerate:
    def test_inference_returns_2d(self, rng):
        gen = _generator()
        mask = gen.generate(rng.random((16, 16)))
        assert mask.shape == (16, 16)
        assert isinstance(mask, np.ndarray)

    def test_inference_preserves_training_mode(self, rng):
        gen = _generator()
        gen.train()
        gen.generate(rng.random((16, 16)))
        assert gen.training

    def test_inference_builds_no_graph(self, rng):
        gen = _generator()
        gen.generate(rng.random((16, 16)))
        assert all(p.grad is None for p in gen.parameters())
