"""Unit tests for Algorithm 1 (adversarial GAN-OPC training)."""

import numpy as np
import pytest

from repro.core import (GanOpcConfig, GanOpcTrainer, MaskGenerator,
                        MaskOnlyDiscriminator, PairDiscriminator)
from repro.ilt import ILTConfig
from repro.layoutgen import SyntheticDataset


@pytest.fixture(scope="module")
def dataset(litho32, kernels32):
    return SyntheticDataset(litho32, size=4, seed=5, kernels=kernels32,
                            ilt_config=ILTConfig(max_iterations=25))


def _trainer(config=None, disc_cls=PairDiscriminator):
    config = config or GanOpcConfig(grid=32, generator_channels=(4, 8),
                                    discriminator_channels=(4, 8),
                                    batch_size=2)
    gen = MaskGenerator(config.generator_channels,
                        rng=np.random.default_rng(1))
    disc = disc_cls(config.grid, config.discriminator_channels,
                    rng=np.random.default_rng(2))
    return GanOpcTrainer(gen, disc, config)


class TestGanOpcConfig:
    @pytest.mark.parametrize("kwargs", [
        {"grid": 30},
        {"alpha": -1.0},
        {"batch_size": 0},
        {"discriminator_loss": "wasserstein"},
        {"label_smoothing": 0.5},
        {"learning_rate_g": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GanOpcConfig(**kwargs)

    def test_presets(self):
        assert GanOpcConfig.paper().grid == 256
        assert GanOpcConfig.small(64).grid == 64


class TestTrainingSteps:
    def test_generator_step_returns_finite_losses(self, dataset):
        trainer = _trainer()
        targets, masks = dataset.pairs_batch([0, 1])
        loss, l2, fake = trainer.generator_step(targets, masks)
        assert np.isfinite(loss)
        assert l2 >= 0
        assert fake.shape == targets.shape

    def test_generator_step_updates_generator_only(self, dataset):
        trainer = _trainer()
        g_before = [p.data.copy() for p in trainer.generator.parameters()]
        d_before = [p.data.copy() for p in trainer.discriminator.parameters()]
        targets, masks = dataset.pairs_batch([0, 1])
        trainer.generator_step(targets, masks)
        g_changed = any(not np.array_equal(a, p.data) for a, p in
                        zip(g_before, trainer.generator.parameters()))
        d_changed = any(not np.array_equal(a, p.data) for a, p in
                        zip(d_before, trainer.discriminator.parameters()))
        assert g_changed and not d_changed

    def test_discriminator_step_updates_discriminator_only(self, dataset):
        trainer = _trainer()
        targets, masks = dataset.pairs_batch([0, 1])
        _, _, fake = trainer.generator_step(targets, masks)
        g_before = [p.data.copy() for p in trainer.generator.parameters()]
        d_before = [p.data.copy() for p in trainer.discriminator.parameters()]
        trainer.discriminator_step(targets, masks, fake)
        g_changed = any(not np.array_equal(a, p.data) for a, p in
                        zip(g_before, trainer.generator.parameters()))
        d_changed = any(not np.array_equal(a, p.data) for a, p in
                        zip(d_before, trainer.discriminator.parameters()))
        assert d_changed and not g_changed

    def test_paper_loss_mode_runs(self, dataset):
        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=2,
                              discriminator_loss="paper")
        trainer = _trainer(config)
        targets, masks = dataset.pairs_batch([0, 1])
        loss_g, loss_d, l2 = trainer.train_iteration(targets, masks)
        assert np.isfinite(loss_d)

    def test_mask_only_ablation_runs(self, dataset):
        trainer = _trainer(disc_cls=MaskOnlyDiscriminator)
        targets, masks = dataset.pairs_batch([0, 1])
        loss_g, loss_d, l2 = trainer.train_iteration(targets, masks)
        assert np.isfinite(loss_g) and np.isfinite(loss_d)


class TestTrainLoop:
    def test_history_lengths(self, dataset):
        trainer = _trainer()
        history = trainer.train(dataset, iterations=6,
                                rng=np.random.default_rng(0))
        assert history.iterations == 6
        assert len(history.discriminator_loss) == 6
        assert len(history.l2_to_reference) == 6
        assert history.runtime_seconds > 0

    def test_regression_term_drives_l2_down(self, dataset):
        """With a dominant alpha, training must reduce the generator's
        L2 to the reference masks (the Figure 7 quantity)."""
        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=4,
                              alpha=500.0)
        trainer = _trainer(config)
        history = trainer.train(dataset, iterations=40,
                                rng=np.random.default_rng(0))
        early = np.mean(history.l2_to_reference[:5])
        late = np.mean(history.l2_to_reference[-5:])
        assert late < early

    def test_reproducible_with_seeded_rng(self, dataset):
        h1 = _trainer().train(dataset, iterations=3,
                              rng=np.random.default_rng(7))
        h2 = _trainer().train(dataset, iterations=3,
                              rng=np.random.default_rng(7))
        np.testing.assert_allclose(h1.generator_loss, h2.generator_loss)
