"""Regenerate the committed stitch-parity fixtures.

Run from the repo root after an *intentional* change to the litho
engine, the ILT optimizer, or the chip synthesizer::

    PYTHONPATH=src python tests/tiling/fixtures/make_fixtures.py

Writes ``parity.glp`` (a 3x3-cell synthetic chip whose 96 px raster
fits a monolithic engine pass) and ``parity_mask.pgm`` (the
monolithic-ILT reference mask for it).  ``test_parity_fixture.py``
asserts the monolithic run still reproduces the committed mask
bit-for-bit and that the tiled runs stay within the documented seam
tolerance of it.
"""

import os

from repro.bench.visualize import write_pgm
from repro.geometry import binarize, glp, rasterize
from repro.ilt.optimizer import ILTConfig, ILTOptimizer
from repro.layoutgen.chip import ChipConfig, synthesize_chip
from repro.litho.config import LithoConfig
from repro.litho.engine import LithoEngine
from repro.litho.kernels import build_kernels

HERE = os.path.dirname(os.path.abspath(__file__))
CHIP_GRID = 96
ILT = ILTConfig(max_iterations=40, patience=None)


def main() -> None:
    chip = synthesize_chip(
        ChipConfig(cells=3, cell_extent=256.0, fill_probability=1.0),
        seed=3, name="parity-chip")
    glp.save(chip, os.path.join(HERE, "parity.glp"))
    target = binarize(rasterize(chip, CHIP_GRID))
    litho = LithoConfig.small(CHIP_GRID)
    engine = LithoEngine.for_kernels(build_kernels(litho))
    result = ILTOptimizer(litho, ILT, engine=engine).optimize(target)
    write_pgm(result.mask, os.path.join(HERE, "parity_mask.pgm"))
    print(f"parity.glp: {len(chip)} shapes, extent {chip.extent:.0f} nm")
    print(f"parity_mask.pgm: l2 {result.l2:.0f}, "
          f"{result.iterations} iterations")


if __name__ == "__main__":
    main()
