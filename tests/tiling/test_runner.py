"""Tiled runner: serial==parallel parity, empty-tile skip, validation."""

import numpy as np
import pytest

from repro.core import GanOpcConfig, MaskGenerator
from repro.geometry import binarize, rasterize
from repro.ilt.optimizer import ILTConfig
from repro.layoutgen.chip import ChipConfig, synthesize_chip
from repro.litho.config import LithoConfig
from repro.tiling import TilingConfig, tiled_flow, tiled_ilt

ILT = ILTConfig(max_iterations=8, eval_interval=4, patience=None)


@pytest.fixture(scope="module")
def chip_target():
    chip = synthesize_chip(
        ChipConfig(cells=2, cell_extent=256.0, fill_probability=1.0),
        seed=5)
    return binarize(rasterize(chip, 64))


@pytest.fixture(scope="module")
def litho32():
    return LithoConfig.small(32)


def test_tiling_config_validation():
    with pytest.raises(ValueError):
        TilingConfig(tile=32, halo=4, blend=5)
    with pytest.raises(ValueError):
        TilingConfig(tile=32, halo=4, blend=-1)


def test_runner_validation(chip_target, litho32):
    with pytest.raises(ValueError):
        tiled_ilt(chip_target[0], TilingConfig(tile=32, halo=4), litho32)
    with pytest.raises(ValueError):
        tiled_ilt(chip_target, TilingConfig(tile=16, halo=4), litho32)


def test_serial_matches_pool_bit_exact(chip_target, litho32):
    config = TilingConfig(tile=32, halo=4)
    serial = tiled_ilt(chip_target, config, litho32, ILT, workers=1)
    pooled = tiled_ilt(chip_target, config, litho32, ILT, workers=2)
    assert serial.workers == 1 and pooled.workers == 2
    assert np.array_equal(serial.mask, pooled.mask)
    assert np.array_equal(serial.mask_relaxed, pooled.mask_relaxed)
    assert np.array_equal(serial.tile_l2, pooled.tile_l2)
    assert serial.tiles_total == pooled.tiles_total
    assert serial.tiles_skipped == pooled.tiles_skipped
    assert pooled.pool_stats is not None
    assert pooled.pool_stats.tasks == pooled.tiles_total


def test_blend_stitches_relaxed_but_not_binary(chip_target, litho32):
    hard = tiled_ilt(chip_target, TilingConfig(tile=32, halo=4),
                     litho32, ILT, workers=1)
    soft_serial = tiled_ilt(chip_target, TilingConfig(tile=32, halo=4,
                                                      blend=3),
                            litho32, ILT, workers=1)
    soft_pooled = tiled_ilt(chip_target, TilingConfig(tile=32, halo=4,
                                                      blend=3),
                            litho32, ILT, workers=2)
    # The binary mask is always a hard core partition.
    assert np.array_equal(soft_serial.mask, hard.mask)
    # Feathering changes the relaxed stitch but stays bit-exact
    # between the serial and pooled paths.
    assert not np.array_equal(soft_serial.mask_relaxed, hard.mask_relaxed)
    assert np.array_equal(soft_serial.mask_relaxed, soft_pooled.mask_relaxed)


def test_empty_tiles_are_skipped(litho32):
    target = np.zeros((64, 64))
    target[2:10, 2:10] = 1.0  # only the first tile sees geometry
    config = TilingConfig(tile=32, halo=4)
    result = tiled_ilt(target, config, litho32, ILT, workers=1)
    assert result.tiles_total == 9  # core 24 -> 3x3 tiles
    assert 0 < result.tiles_skipped < result.tiles_total
    # Skipped tiles produce exactly empty mask pixels.
    assert not result.mask[40:, 40:].any()
    no_skip = tiled_ilt(target,
                        TilingConfig(tile=32, halo=4, skip_empty=False),
                        litho32, ILT, workers=1)
    assert no_skip.tiles_skipped == 0
    # The binary mask is unaffected by the skip shortcut.
    assert np.array_equal(no_skip.mask, result.mask)


def test_tiled_flow_serial_matches_pool(chip_target, litho32):
    generator = MaskGenerator(GanOpcConfig.small(32).generator_channels,
                              rng=np.random.default_rng(0))
    generator.eval()
    config = TilingConfig(tile=32, halo=4)
    refine = ILTConfig(max_iterations=6, eval_interval=3, patience=None)
    serial = tiled_flow(generator, chip_target, config, litho32, refine,
                        workers=1)
    pooled = tiled_flow(generator, chip_target, config, litho32, refine,
                        workers=2)
    assert np.array_equal(serial.mask, pooled.mask)
    assert np.array_equal(serial.mask_relaxed, pooled.mask_relaxed)
    assert np.array_equal(serial.tile_l2, pooled.tile_l2)
    assert serial.mask.shape == chip_target.shape


def test_result_accounting(chip_target, litho32):
    result = tiled_ilt(chip_target, TilingConfig(tile=32, halo=4),
                       litho32, ILT, workers=1)
    assert result.l2 == pytest.approx(result.tile_l2.sum())
    assert result.tile_l2.shape == (result.tiles_total,)
    assert result.iterations > 0
    assert result.runtime_seconds > 0.0
    assert result.tile_grid.chip_grid == chip_target.shape[0]
