"""Halo-sufficiency sweep: seam error decays as the halo grows.

Halo sufficiency is a property of the *simulation operator*: a tile
optimizes against the window-local litho model, so the halo is
sufficient when that model agrees with the chip-scale model on the
core.  (Mask-level agreement between tiled and monolithic *ILT* is
not monotone in the halo — steepest descent is chaotic in its inputs
and its solutions are not unique — which is why the sweep measures
the simulation truncation error; see DESIGN.md §12.)

For every window of a tile decomposition we compare the tile-local
aerial image against the monolithic aerial on that window, and define

    eps(h) = max over windows, over pixels >= h from the window edge,
             of |I_tile - I_chip|

the worst simulation error a tile would see for a pixel protected by
an ``h``-pixel halo.  The sweep asserts eps is monotonically
non-increasing and decays substantially — the default 8 px halo cuts
the unprotected (h=0) error by at least ~3x, with the remaining floor
set by the window's periodic wrap-around.
"""

import numpy as np
import pytest

from repro.geometry import binarize, rasterize
from repro.layoutgen.chip import ChipConfig, synthesize_chip
from repro.litho.config import LithoConfig
from repro.litho.engine import LithoEngine
from repro.litho.kernels import build_kernels
from repro.tiling import TileGrid, extract_window

CHIP_GRID = 96
TILE = 32
HALOS = (0, 2, 4, 6, 8, 12)


@pytest.fixture(scope="module")
def sweep():
    chip = synthesize_chip(
        ChipConfig(cells=3, cell_extent=256.0, fill_probability=1.0),
        seed=3)
    mask = binarize(rasterize(chip, CHIP_GRID))
    chip_engine = LithoEngine.for_kernels(
        build_kernels(LithoConfig.small(CHIP_GRID)))
    tile_engine = LithoEngine.for_kernels(
        build_kernels(LithoConfig.small(TILE)))
    reference = chip_engine.aerial(mask)
    # Non-overlapping windows tiling the chip (halo-0 decomposition).
    grid = TileGrid(chip_grid=CHIP_GRID, tile=TILE, halo=0)
    errors = []
    for tile in grid:
        local = tile_engine.aerial(extract_window(mask, tile))
        ref_window = np.zeros((TILE, TILE))
        ref_window[:tile.core_height, :tile.core_width] = \
            reference[tile.core_slices()]
        errors.append(np.abs(local - ref_window))
    eps = {}
    for h in HALOS:
        eps[h] = max(float(np.max(e[h:TILE - h, h:TILE - h]))
                     for e in errors)
    return eps


def test_seam_error_decreases_monotonically_with_halo(sweep):
    values = [sweep[h] for h in HALOS]
    assert all(a >= b for a, b in zip(values, values[1:])), \
        f"eps(h) must be non-increasing, got {values}"


def test_default_halo_cuts_seam_error_substantially(sweep):
    # Unprotected pixels see large simulation error ...
    assert sweep[0] > 0.2
    # ... a 4 px halo halves it, and the default 8 px halo cuts it
    # by at least ~3x (measured ~4x; margin for kernel regeneration).
    assert sweep[4] < 0.6 * sweep[0]
    assert sweep[8] < 0.35 * sweep[0]
    # The default halo brings the worst per-pixel intensity error well
    # below the resist threshold scale (0.225 clear-field units).
    assert sweep[8] < 0.12
