"""Stitch-parity regression against the committed golden fixture.

``fixtures/parity.glp`` is a 3x3-cell synthetic chip whose 96 px
raster still fits one monolithic engine pass; ``parity_mask.pgm`` is
the monolithic-ILT reference mask for it (regenerate both with
``fixtures/make_fixtures.py`` after intentional engine changes).

Documented seam tolerance at the default 8 px halo (DESIGN.md §12),
measured through the *monolithic* simulation of both masks:

* the stitched mask's print error is within **1.35x** of the
  reference's;
* the two prints disagree on at most **12%** of chip pixels.

ILT solutions are not unique, so mask-level agreement is not part of
the contract — print-level agreement is.
"""

import os

import numpy as np
import pytest

from repro.bench.visualize import read_pgm
from repro.geometry import binarize, glp, rasterize
from repro.ilt.optimizer import ILTConfig, ILTOptimizer
from repro.litho.config import LithoConfig
from repro.litho.engine import LithoEngine
from repro.litho.kernels import build_kernels
from repro.metrics import seam_report
from repro.tiling import TilingConfig, tiled_ilt

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
CHIP_GRID = 96
ILT = ILTConfig(max_iterations=40, patience=None)
TILING = TilingConfig(tile=32, halo=8)

# The documented stitch-parity tolerance at the default halo.
PRINT_L2_FACTOR = 1.35
PRINT_MISMATCH_FRACTION = 0.12


@pytest.fixture(scope="module")
def fixture():
    layout = glp.load(os.path.join(FIXTURES, "parity.glp"))
    target = binarize(rasterize(layout, CHIP_GRID))
    reference = (read_pgm(os.path.join(FIXTURES, "parity_mask.pgm"))
                 >= 0.5).astype(float)
    litho = LithoConfig.small(CHIP_GRID)
    engine = LithoEngine.for_kernels(build_kernels(litho))
    return layout, target, reference, litho, engine


def test_committed_reference_reproduces(fixture):
    """The monolithic ILT run is deterministic: it must still produce
    the committed reference mask bit for bit."""
    _, target, reference, litho, engine = fixture
    result = ILTOptimizer(litho, ILT, engine=engine).optimize(target)
    assert np.array_equal(result.mask, reference)


def test_stitched_matches_monolithic_within_tolerance(fixture):
    _, target, reference, _, engine = fixture
    tiled = tiled_ilt(target, TILING, LithoConfig.small(TILING.tile), ILT,
                      workers=1)
    assert tiled.mask.shape == (CHIP_GRID, CHIP_GRID)
    ref_print = engine.wafer(reference)
    tiled_print = engine.wafer(tiled.mask)
    ref_l2 = float(np.sum((ref_print - target) ** 2))
    tiled_l2 = float(np.sum((tiled_print - target) ** 2))
    assert tiled_l2 <= PRINT_L2_FACTOR * ref_l2, \
        f"stitched print error {tiled_l2:.0f} vs reference {ref_l2:.0f}"
    report = seam_report(tiled_print, ref_print,
                         core=TILING.tile - 2 * TILING.halo, width=4)
    assert report.total_mismatch_fraction <= PRINT_MISMATCH_FRACTION, \
        str(report)
    # The disagreement concentrates at the seams: the band holds a
    # disproportionate share of the mismatches.
    assert report.band_mismatch > 0
    assert (report.band_mismatch / max(report.total_mismatch, 1)
            > report.band_pixels / (CHIP_GRID * CHIP_GRID))


def test_serial_and_pool_tiled_runs_bit_exact(fixture):
    _, target, _, _, _ = fixture
    litho = LithoConfig.small(TILING.tile)
    serial = tiled_ilt(target, TILING, litho, ILT, workers=1)
    pooled = tiled_ilt(target, TILING, litho, ILT, workers=2)
    assert np.array_equal(serial.mask, pooled.mask)
    assert np.array_equal(serial.mask_relaxed, pooled.mask_relaxed)
    assert np.array_equal(serial.tile_l2, pooled.tile_l2)
