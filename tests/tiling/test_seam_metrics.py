"""Seam band construction and stitched-vs-monolithic reporting."""

import numpy as np
import pytest

from repro.metrics import SeamReport, seam_band, seam_report


def test_seam_band_marks_interior_seams_only():
    band = seam_band(chip_grid=12, core=4, width=1)
    # Seams at rows/cols 4 and 8; band covers indices {3,4} and {7,8}.
    near = {3, 4, 7, 8}
    for idx in range(12):
        assert band[idx, 0] == (idx in near)
        assert band[0, idx] == (idx in near)
    # Width 0 selects nothing.
    assert not seam_band(12, 4, 0).any()
    # A single-tile chip has no interior seams.
    assert not seam_band(12, 16, 3).any()


def test_seam_band_validation():
    with pytest.raises(ValueError):
        seam_band(0, 4, 1)
    with pytest.raises(ValueError):
        seam_band(12, 0, 1)
    with pytest.raises(ValueError):
        seam_band(12, 4, -1)


def test_seam_report_splits_band_and_interior():
    chip = 12
    reference = np.zeros((chip, chip))
    stitched = np.zeros((chip, chip))
    stitched[4, 0] = 1.0    # on-seam mismatch (row 4 is a seam)
    stitched[0, 0] = 1.0    # interior mismatch
    stitched[6, 6] = 0.3    # sub-threshold gray difference: not a mismatch
    report = seam_report(stitched, reference, core=4, width=1)
    assert isinstance(report, SeamReport)
    assert report.band_mismatch == 1
    assert report.interior_mismatch == 1
    assert report.total_mismatch == 2
    assert report.max_abs_difference == 1.0
    assert 0.0 < report.band_mismatch_fraction < 1.0
    assert report.total_mismatch_fraction == 2 / (chip * chip)
    assert report.band_pixels + report.interior_pixels == chip * chip
    assert "seam band" in str(report)


def test_seam_report_identical_images():
    image = np.random.default_rng(0).random((16, 16))
    report = seam_report(image, image, core=8, width=2)
    assert report.total_mismatch == 0
    assert report.max_abs_difference == 0.0


def test_seam_report_validation():
    with pytest.raises(ValueError):
        seam_report(np.zeros((4, 4)), np.zeros((5, 5)), core=2)
    with pytest.raises(ValueError):
        seam_report(np.zeros((4, 5)), np.zeros((4, 5)), core=2)
