"""Full-chip scale test: >= 2000 tiles through the tiled CLI flow.

Excluded from the default run by the ``slow`` marker (pyproject
``addopts``); CI runs it in the dedicated tiled-flow job with
``-m slow``.
"""

import os

import numpy as np
import pytest

from repro import nn
from repro.cli import main
from repro.core import GanOpcConfig, MaskGenerator

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("workers", [2])
def test_flow_tiled_2000_tiles(tmp_path, capsys, workers):
    # 8x8 cells of 720 nm -> 5760 nm chip -> 720 px at 8 nm/px.
    # tile 32 / halo 8 -> core 16 -> 45x45 = 2025 tiles.  Sparse fill
    # keeps most tiles empty (skipped), so the run exercises scale in
    # the decomposition and fan-out rather than raw ILT throughput.
    chip = str(tmp_path / "chip.glp")
    assert main(["chip", "--cells", "8", "--cell-extent", "720",
                 "--fill", "0.05", "--seed", "4", "--out", chip]) == 0

    generator = MaskGenerator(GanOpcConfig.small(32).generator_channels,
                              rng=np.random.default_rng(0))
    ckpt = str(tmp_path / "gen.npz")
    nn.save_state(generator, ckpt)

    out = str(tmp_path / "mask.pgm")
    assert main(["flow", chip, ckpt, "--tiled",
                 "--tile-size", "32", "--halo", "8",
                 "--iterations", "2", "--workers", str(workers),
                 "--out", out]) == 0
    stdout = capsys.readouterr().out
    assert "tiles: 2025 (45x45, tile 32px, halo 8px, core 16px)" in stdout
    assert "chip grid: 720px" in stdout
    # The sparse chip skips most tiles but the spanning wires keep a
    # real population of optimized ones.
    skipped = int(stdout.split("skipped ")[1].split(" empty")[0])
    assert 0 < skipped < 2025
    assert os.path.exists(out)

    from repro.bench import read_pgm
    mask = read_pgm(out)
    assert mask.shape == (720, 720)
    assert set(np.unique(mask)) <= {0.0, 1.0}
    assert mask.any()
