"""Property-based tests of the tile decomposition (hypothesis).

The two contracts everything downstream leans on:

* tile cores partition the chip raster exactly — every pixel owned by
  exactly one core, no gap, no double cover;
* reassembling raw target windows through the core-crop stitch is
  bit-exact versus the monolithic raster, whether the windows were
  cropped from the chip image or rasterized directly from vector
  geometry with global pixel coordinates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize, rasterize_region
from repro.geometry.shapes import Rect
from repro.tiling import (TileGrid, extract_window, rasterize_window,
                          stitch_cores)


@st.composite
def tile_grids(draw):
    tile = draw(st.integers(min_value=8, max_value=48))
    halo = draw(st.integers(min_value=0, max_value=(tile - 1) // 2))
    chip_grid = draw(st.integers(min_value=1, max_value=160))
    return TileGrid(chip_grid=chip_grid, tile=tile, halo=halo)


def random_layout(seed: int, extent: float, rects: int) -> Layout:
    rng = np.random.default_rng(seed)
    layout = Layout(extent=extent)
    for _ in range(rects):
        x0, y0 = rng.uniform(0.0, extent * 0.9, size=2)
        w, h = rng.uniform(extent * 0.02, extent * 0.3, size=2)
        layout.add(Rect(x0, y0, min(x0 + w, extent), min(y0 + h, extent)))
    return layout


@settings(max_examples=60, deadline=None)
@given(grid=tile_grids())
def test_cores_partition_exactly(grid):
    cover = np.zeros((grid.chip_grid, grid.chip_grid), dtype=int)
    for tile in grid:
        assert tile.core_height >= 1 and tile.core_width >= 1
        assert 0 <= tile.core_row0 < tile.core_row1 <= grid.chip_grid
        assert 0 <= tile.core_col0 < tile.core_col1 <= grid.chip_grid
        cover[tile.core_slices()] += 1
    assert np.array_equal(cover, np.ones_like(cover)), \
        "cores must cover every chip pixel exactly once"


@settings(max_examples=60, deadline=None)
@given(grid=tile_grids())
def test_windows_have_uniform_engine_size(grid):
    for tile in grid:
        assert tile.window_row1 - tile.window_row0 == grid.tile
        assert tile.window_col1 - tile.window_col0 == grid.tile
        # The core sits inside the window at the halo offset.
        assert tile.window_row0 + tile.halo == tile.core_row0
        assert tile.window_col0 + tile.halo == tile.core_col0


@settings(max_examples=25, deadline=None)
@given(grid=tile_grids(), seed=st.integers(min_value=0, max_value=2**16))
def test_raw_window_reassembly_bit_exact(grid, seed):
    layout = random_layout(seed, extent=8.0 * grid.chip_grid, rects=6)
    chip = rasterize(layout, grid.chip_grid)
    windows = [extract_window(chip, tile) for tile in grid]
    assert np.array_equal(stitch_cores(windows, grid), chip)


@settings(max_examples=25, deadline=None)
@given(grid=tile_grids(), seed=st.integers(min_value=0, max_value=2**16))
def test_vector_window_matches_raster_crop(grid, seed):
    layout = random_layout(seed, extent=8.0 * grid.chip_grid, rects=6)
    chip = rasterize(layout, grid.chip_grid)
    for tile in grid:
        vector = rasterize_window(layout, grid, tile)
        assert np.array_equal(vector, extract_window(chip, tile))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       grid_px=st.integers(min_value=4, max_value=96),
       data=st.data())
def test_rasterize_region_is_bit_exact_crop(seed, grid_px, data):
    layout = random_layout(seed, extent=8.0 * grid_px, rects=5)
    row0 = data.draw(st.integers(0, grid_px - 1))
    row1 = data.draw(st.integers(row0 + 1, grid_px))
    col0 = data.draw(st.integers(0, grid_px - 1))
    col1 = data.draw(st.integers(col0 + 1, grid_px))
    full = rasterize(layout, grid_px)
    region = rasterize_region(layout, grid_px, row0, row1, col0, col1)
    assert np.array_equal(region, full[row0:row1, col0:col1])
    centers = rasterize_region(layout, grid_px, row0, row1, col0, col1,
                               antialias=False)
    assert np.array_equal(
        centers, rasterize(layout, grid_px, antialias=False)[row0:row1,
                                                             col0:col1])


def test_tile_grid_validation():
    with pytest.raises(ValueError):
        TileGrid(chip_grid=0, tile=32, halo=4)
    with pytest.raises(ValueError):
        TileGrid(chip_grid=64, tile=4, halo=0)
    with pytest.raises(ValueError):
        TileGrid(chip_grid=64, tile=32, halo=-1)
    with pytest.raises(ValueError):
        TileGrid(chip_grid=64, tile=32, halo=16)  # no core left
    grid = TileGrid(chip_grid=64, tile=32, halo=4)
    with pytest.raises(ValueError):
        grid.tile_at(grid.rows, 0)


def test_rasterize_region_validation():
    layout = random_layout(0, extent=64.0, rects=2)
    with pytest.raises(ValueError):
        rasterize_region(layout, 8, 0, 0, 0, 4)
    with pytest.raises(ValueError):
        rasterize_region(layout, 8, 0, 9, 0, 4)
    with pytest.raises(ValueError):
        rasterize_region(layout, 8, -1, 4, 0, 4)


def test_clamped_last_tiles_keep_window_size():
    grid = TileGrid(chip_grid=70, tile=32, halo=4)  # core 24 -> 3 rows
    last = grid.tile_at(grid.rows - 1, grid.cols - 1)
    assert last.core_row1 == 70 and last.core_height == 70 - 2 * 24
    assert last.window_row1 - last.window_row0 == 32
    chip = np.arange(70.0 * 70.0).reshape(70, 70)
    window = extract_window(chip, last)
    inside = window[last.local_core_slices()]
    assert np.array_equal(inside, chip[last.core_slices()])
    # Padding beyond the chip is empty field.
    assert np.all(window[last.halo + last.core_height:, :] == 0.0)
