"""Stitch rules: exact core partition and seam feathering."""

import numpy as np
import pytest

from repro.tiling import TileGrid, extract_window, stitch_cores
from repro.tiling.stitch import stitch_feathered


def _grid():
    return TileGrid(chip_grid=48, tile=24, halo=4)


def test_stitch_cores_rejects_bad_inputs():
    grid = _grid()
    windows = [np.zeros((grid.tile, grid.tile)) for _ in grid]
    with pytest.raises(ValueError):
        stitch_cores(windows[:-1], grid)
    bad = list(windows)
    bad[0] = np.zeros((grid.tile, grid.tile + 1))
    with pytest.raises(ValueError):
        stitch_cores(bad, grid)


def test_feather_validation():
    grid = _grid()
    windows = [np.zeros((grid.tile, grid.tile)) for _ in grid]
    with pytest.raises(ValueError):
        stitch_feathered(windows, grid, blend=-1)
    with pytest.raises(ValueError):
        stitch_feathered(windows, grid, blend=grid.halo + 1)
    with pytest.raises(ValueError):
        stitch_feathered(windows[:-1], grid, blend=2)


def test_feather_blend_zero_equals_core_crop():
    grid = _grid()
    rng = np.random.default_rng(0)
    windows = [rng.random((grid.tile, grid.tile)) for _ in grid]
    assert np.array_equal(stitch_feathered(windows, grid, 0),
                          stitch_cores(windows, grid))


def test_feather_reproduces_consistent_windows_exactly():
    """When all tiles agree (windows crop one chip image), feathering
    must reproduce that image: the weights are a partition of unity
    over agreeing contributions."""
    grid = _grid()
    rng = np.random.default_rng(1)
    chip = rng.random((grid.chip_grid, grid.chip_grid))
    windows = [extract_window(chip, tile) for tile in grid]
    for blend in (1, 2, grid.halo):
        stitched = stitch_feathered(windows, grid, blend)
        assert np.allclose(stitched, chip, atol=1e-12)


def test_feather_smooths_disagreeing_tiles():
    """A hard disagreement between neighbors turns into a ramp."""
    grid = TileGrid(chip_grid=32, tile=24, halo=4)  # 2x2 tiles, core 16
    windows = []
    for tile in grid:
        value = 1.0 if tile.col == 0 else 0.0
        windows.append(np.full((tile.size, tile.size), value))
    hard = stitch_cores(windows, grid)
    soft = stitch_feathered(windows, grid, blend=4)
    row = grid.chip_grid // 4
    # Hard crop steps 1 -> 0 at the seam (col 16).
    assert hard[row, 15] == 1.0 and hard[row, 16] == 0.0
    # Feathered stitch crosses through intermediate values.
    seam_values = soft[row, 12:20]
    assert np.all(np.diff(seam_values) <= 1e-12)
    assert np.any((seam_values > 0.1) & (seam_values < 0.9))
    # Away from the seam the tiles are untouched.
    assert soft[row, 0] == 1.0 and soft[row, -1] == 0.0
