"""Shared fixtures for the test suite.

Kernel construction is the most expensive setup step, so kernel sets
and simulators for the standard small grids are session-scoped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.litho import (KernelSet, LithoConfig, LithoSimulator,
                         build_kernels)


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    """Keep run-ledger records out of the working tree: commands that
    record runs (ilt/train/flow/table2) default to ``.repro_runs/`` in
    the cwd unless ``REPRO_RUNS_DIR`` points elsewhere."""
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / ".repro_runs"))


@pytest.fixture(scope="session")
def litho32() -> LithoConfig:
    return LithoConfig.small(32)


@pytest.fixture(scope="session")
def litho64() -> LithoConfig:
    return LithoConfig.small(64)


@pytest.fixture(scope="session")
def kernels32(litho32) -> KernelSet:
    return build_kernels(litho32)


@pytest.fixture(scope="session")
def kernels64(litho64) -> KernelSet:
    return build_kernels(litho64)


@pytest.fixture(scope="session")
def sim32(litho32, kernels32) -> LithoSimulator:
    return LithoSimulator(litho32, kernels32)


@pytest.fixture(scope="session")
def sim64(litho64, kernels64) -> LithoSimulator:
    return LithoSimulator(litho64, kernels64)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def numeric_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``array``.

    The function must read ``array`` afresh on each call (the fixture
    mutates it in place and restores it).
    """
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        upper = func()
        array[index] = original - eps
        lower = func()
        array[index] = original
        grad[index] = (upper - lower) / (2.0 * eps)
        iterator.iternext()
    return grad
