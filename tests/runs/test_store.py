"""Run ledger store tests (ISSUE 9): manifests, resolution, artifacts."""

import json
import os

import pytest

from repro.runs import (MANIFEST_NAME, QUALITY_LOG_NAME, RunManifest,
                        RunStore, RunStoreError, git_revision,
                        package_versions, utc_iso)
from repro.runtime import validate_record


def _read_records(path):
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestHelpers:
    def test_git_revision_of_repo_is_short_hash(self):
        rev = git_revision(os.path.dirname(os.path.abspath(__file__)))
        assert rev != "unknown"
        assert 6 <= len(rev) <= 12

    def test_git_revision_outside_repo_is_unknown(self, tmp_path):
        assert git_revision(str(tmp_path)) == "unknown"

    def test_package_versions_cover_numeric_stack(self):
        versions = package_versions()
        assert "python" in versions
        assert "numpy" in versions

    def test_utc_iso_is_zulu(self):
        stamp = utc_iso(0.0)
        assert stamp == "1970-01-01T00:00:00Z"


class TestCreate:
    def test_create_writes_manifest(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        run = store.create("ilt", argv=["clip.glp", "--iterations", "5"],
                           seed=7, precision="f64", workers=1,
                           params={"clip": "clip-0000"})
        assert os.path.isfile(os.path.join(run.dir, MANIFEST_NAME))
        assert "-ilt-" in run.manifest.run_id
        assert run.manifest.status == "running"
        assert run.manifest.seed == 7
        assert run.manifest.params["clip"] == "clip-0000"
        assert run.manifest.packages["python"]

    def test_create_with_litho_records_hash_and_grid(self, tmp_path,
                                                     litho32):
        store = RunStore(str(tmp_path / "store"))
        run = store.create("table2", litho=litho32)
        assert run.manifest.config_hash
        assert run.manifest.grid == 32
        assert run.manifest.litho["grid"] == 32

    def test_manifest_round_trips(self, tmp_path, litho32):
        store = RunStore(str(tmp_path / "store"))
        run = store.create("flow", argv=["a.glp"], litho=litho32,
                           seed=3, precision="f32", workers=4,
                           params={"iterations": 10})
        reloaded = store.load(run.manifest.run_id)
        assert reloaded.manifest.to_dict() == run.manifest.to_dict()

    def test_config_fields_flatten_params_and_packages(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        run = store.create("train", seed=1, params={"phase": "gan"})
        fields = run.manifest.config_fields()
        assert fields["command"] == "train"
        assert fields["seed"] == 1
        assert fields["params.phase"] == "gan"
        assert any(key.startswith("packages.") for key in fields)

    def test_from_dict_rejects_non_manifest(self):
        with pytest.raises(RunStoreError, match="not a run manifest"):
            RunManifest.from_dict({"foo": 1})

    def test_from_dict_ignores_unknown_fields(self):
        manifest = RunManifest.from_dict(
            {"run_id": "x", "command": "ilt", "future_field": 42})
        assert manifest.run_id == "x"
        assert not hasattr(manifest, "future_field")


class TestLoggerAndFinish:
    def test_logger_writes_valid_quality_jsonl(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        run = store.create("ilt")
        run.log_manifest_record()
        run.logger.quality_sample(0, 1.5, l2=2.0, clip="c", method="ILT")
        run.finish()
        records = _read_records(run.quality_log_path)
        assert [r["event"] for r in records] == ["run_manifest",
                                                 "quality_sample"]
        for record in records:
            validate_record(record)
        assert records[0]["run_id"] == run.manifest.run_id
        assert run.manifest.artifacts["quality"] == QUALITY_LOG_NAME

    def test_finish_stamps_status_and_summary(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        run = store.create("train")
        run.finish(status="complete", summary={"final_l2": 3.25})
        reloaded = store.load(run.manifest.run_id)
        assert reloaded.manifest.status == "complete"
        assert reloaded.manifest.finished
        assert reloaded.manifest.summary["final_l2"] == 3.25

    def test_nonfinite_summary_survives_strict_json(self, tmp_path):
        # Commands drop raw floats into the summary; NaN must encode as
        # the telemetry string form, not crash the allow_nan=False dump.
        store = RunStore(str(tmp_path / "store"))
        run = store.create("train")
        run.finish(status="error", summary={"final_loss": float("nan")})
        reloaded = store.load(run.manifest.run_id)
        assert reloaded.manifest.summary["final_loss"] == "nan"


class TestArtifacts:
    def test_inside_paths_stored_relative(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        run = store.create("ilt")
        inside = os.path.join(run.dir, "mask.pgm")
        open(inside, "w").write("P2\n")
        assert run.add_artifact("mask", inside) == "mask.pgm"
        assert run.artifact_path("mask") == inside

    def test_outside_paths_stored_absolute(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        run = store.create("ilt")
        outside = tmp_path / "elsewhere.pgm"
        outside.write_text("P2\n")
        stored = run.add_artifact("mask", str(outside))
        assert os.path.isabs(stored)
        assert run.artifact_path("mask") == str(outside)

    def test_import_file_copies_into_run_dir(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        run = store.create("ilt")
        source = tmp_path / "clip.glp"
        source.write_text("BEGIN\nEND\n")
        run.import_file("clip", str(source))
        assert run.manifest.artifacts["clip"] == "clip.glp"
        assert open(run.artifact_path("clip")).read() == "BEGIN\nEND\n"

    def test_missing_artifact_is_none(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        run = store.create("ilt")
        assert run.artifact_path("nope") is None


class TestResolve:
    def _store_with_runs(self, tmp_path, commands):
        store = RunStore(str(tmp_path / "store"))
        ids = []
        for command in commands:
            run = store.create(command)
            run.finish()
            ids.append(run.manifest.run_id)
        return store, ids

    def test_empty_store_raises(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        assert store.run_ids() == []
        with pytest.raises(RunStoreError, match="is empty"):
            store.resolve("latest")

    def test_latest_is_last_chronological(self, tmp_path):
        store, ids = self._store_with_runs(tmp_path, ["ilt", "flow"])
        assert store.resolve("latest").manifest.run_id == sorted(ids)[-1]
        assert store.resolve("@").manifest.run_id == sorted(ids)[-1]

    def test_exact_prefix_and_substring(self, tmp_path):
        store, ids = self._store_with_runs(tmp_path, ["ilt", "flow"])
        (flow_id,) = [rid for rid in ids if "-flow-" in rid]
        assert store.resolve(flow_id).manifest.run_id == flow_id
        # unique prefix (timestamp + command distinguishes the runs)
        assert store.resolve(flow_id[:-4]).manifest.run_id == flow_id
        assert store.resolve("flow").manifest.run_id == flow_id

    def test_ambiguous_and_missing_tokens_raise(self, tmp_path):
        store, _ = self._store_with_runs(tmp_path, ["ilt", "ilt"])
        with pytest.raises(RunStoreError, match="ambiguous"):
            store.resolve("ilt")
        with pytest.raises(RunStoreError, match="no run matches"):
            store.resolve("zzz-not-a-run")

    def test_corrupt_manifest_raises(self, tmp_path):
        store, ids = self._store_with_runs(tmp_path, ["ilt"])
        path = os.path.join(store.root, ids[0], MANIFEST_NAME)
        open(path, "w").write("{not json")
        with pytest.raises(RunStoreError, match="corrupt manifest"):
            store.load(ids[0])

    def test_load_unknown_id_raises(self, tmp_path):
        store, _ = self._store_with_runs(tmp_path, ["ilt"])
        with pytest.raises(RunStoreError, match="no run"):
            store.load("20990101T000000-ilt-deadbeef")

    def test_runs_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "env-store"))
        assert RunStore().root == str(tmp_path / "env-store")
        assert RunStore(str(tmp_path / "explicit")).root == \
            str(tmp_path / "explicit")
