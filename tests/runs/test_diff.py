"""Run-to-run diff tests: config, quality and engine-counter deltas."""

from repro.runs import RunManifest, RunQuality, diff_runs, format_run_diff


def _manifest(run_id, **overrides):
    manifest = RunManifest(
        run_id=run_id, command="table2", git_rev="abc1234",
        config_hash="cafe0001", seed=5, precision="f64", workers=1,
        params={"scale": "quick"}, packages={"numpy": "1.26"},
        summary={"litho": {"forward_calls": 100, "forward_seconds": 2.0}})
    for key, value in overrides.items():
        setattr(manifest, key, value)
    return manifest


def _quality(l2_01=100.0, l2_02=200.0):
    quality = RunQuality()
    quality.clip_results["ILT"] = {
        "iccad13-01": {"l2_nm2": l2_01, "pvband_nm2": 50.0},
        "iccad13-02": {"l2_nm2": l2_02, "pvband_nm2": 60.0},
    }
    return quality


class TestDiffRuns:
    def test_identical_runs_have_no_deltas(self):
        diff = diff_runs(_manifest("a"), _quality(),
                         _manifest("b"), _quality())
        assert diff.config == []
        assert diff.aggregates["ILT"]["l2_nm2"] == (150.0, 150.0)
        assert diff.engine["forward_calls"] == (100.0, 100.0)

    def test_config_deltas_listed(self):
        b = _manifest("b", seed=9, config_hash="cafe0002",
                      params={"scale": "paper"})
        diff = diff_runs(_manifest("a"), _quality(), b, _quality())
        changed = {key: (va, vb) for key, va, vb in diff.config}
        assert changed["seed"] == (5, 9)
        assert changed["config_hash"] == ("cafe0001", "cafe0002")
        assert changed["params.scale"] == ("quick", "paper")
        assert "precision" not in changed

    def test_per_clip_and_aggregate_deltas(self):
        diff = diff_runs(_manifest("a"), _quality(),
                         _manifest("b"), _quality(l2_01=110.0))
        assert diff.clips["ILT"]["iccad13-01"]["l2_nm2"] == (100.0, 110.0)
        assert diff.clips["ILT"]["iccad13-02"]["l2_nm2"] == (200.0, 200.0)
        assert diff.aggregates["ILT"]["l2_nm2"] == (150.0, 155.0)

    def test_only_shared_clips_and_methods_compared(self):
        quality_b = _quality()
        quality_b.clip_results["ILT"].pop("iccad13-02")
        quality_b.clip_results["GAN-OPC"] = {"iccad13-01": {"l2_nm2": 1.0}}
        diff = diff_runs(_manifest("a"), _quality(),
                         _manifest("b"), quality_b)
        assert set(diff.clips["ILT"]) == {"iccad13-01"}
        assert "GAN-OPC" not in diff.aggregates

    def test_engine_counters_from_summaries(self):
        b = _manifest("b")
        b.summary = {"litho": {"forward_calls": 120,
                               "forward_seconds": 2.4,
                               "note": "ignored-non-numeric"}}
        diff = diff_runs(_manifest("a"), _quality(), b, _quality())
        assert diff.engine == {"forward_calls": (100.0, 120.0),
                               "forward_seconds": (2.0, 2.4)}

    def test_no_quality_flag(self):
        diff = diff_runs(_manifest("a"), RunQuality(),
                         _manifest("b"), RunQuality())
        assert not diff.has_quality


class TestFormatRunDiff:
    def test_sections_render(self):
        diff = diff_runs(_manifest("run-a"), _quality(),
                         _manifest("run-b", seed=9),
                         _quality(l2_01=110.0))
        text = format_run_diff(diff)
        assert "runs diff: A=run-a  B=run-b" in text
        assert "config deltas:" in text
        assert "seed" in text
        assert "aggregate quality" in text
        assert "per-clip deltas (l2_nm2):" in text
        assert "ILT/iccad13-01" in text
        assert "litho engine counters:" in text
        # signed delta and ratio for the regressed clip
        assert "+10.0" in text
        assert "1.100x" in text

    def test_identical_config_message(self):
        diff = diff_runs(_manifest("a"), _quality(),
                         _manifest("b"), _quality())
        assert "(identical configuration)" in format_run_diff(diff)

    def test_metric_filter_and_no_clips(self):
        diff = diff_runs(_manifest("a"), _quality(),
                         _manifest("b"), _quality())
        text = format_run_diff(diff, metrics=["pvband_nm2"],
                               show_clips=False)
        assert "pvband_nm2" in text
        assert "  l2_nm2" not in text
        assert "per-clip deltas" not in text

    def test_missing_quality_message(self):
        diff = diff_runs(_manifest("a"), RunQuality(),
                         _manifest("b"), RunQuality())
        assert "no overlapping clip_result" in format_run_diff(diff)
