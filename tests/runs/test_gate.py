"""Quality-regression gate tests (benchmarks/check_quality_regression.py).

The gate is the CI fault line: it must pass on identical records, fail
on a seeded regression, and refuse to compare mismatched suites — the
fault-injection cases here are the proof the gate actually gates.
"""

import copy
import importlib.util
import json
import os

import pytest

from repro.runs import QUALITY_SCHEMA_VERSION

_SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, os.pardir, "benchmarks",
                       "check_quality_regression.py")


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_quality", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _record(clip_overrides=None):
    clips = {
        "ILT": {"iccad13-01": {"l2_nm2": 100.0, "pvband_nm2": 50.0,
                               "epe_violations": 0.0},
                "iccad13-02": {"l2_nm2": 200.0, "pvband_nm2": 60.0,
                               "epe_violations": 2.0}},
        "PGAN-OPC": {"iccad13-01": {"l2_nm2": 90.0, "pvband_nm2": 45.0,
                                    "epe_violations": 0.0}},
    }
    for (method, clip, metric), value in (clip_overrides or {}).items():
        clips[method][clip][metric] = value
    aggregates = {
        method: {
            metric: sum(m[metric] for m in per_clip.values())
            / len(per_clip)
            for metric in ("l2_nm2", "pvband_nm2", "epe_violations")
        }
        for method, per_clip in clips.items()
    }
    return {"schema": QUALITY_SCHEMA_VERSION, "kind": "quality",
            "suite": "table2-quick", "generated_utc": "now",
            "git_rev": "abc", "config_hash": "cafe",
            "clips": clips, "aggregates": aggregates}


def _write(tmp_path, name, record):
    path = tmp_path / name
    path.write_text(json.dumps(record))
    return str(path)


class TestWorse:
    def test_must_exceed_both_tolerances(self, gate):
        # +10% but only +0.5 absolute: inside abs-tol, not a regression
        assert not gate._worse(5.0, 5.5, rel_tol=0.05, abs_tol=1.0)
        # +2 absolute but only +1%: inside rel-tol
        assert not gate._worse(200.0, 202.0, rel_tol=0.05, abs_tol=1.0)
        # beyond both
        assert gate._worse(100.0, 110.0, rel_tol=0.05, abs_tol=1.0)

    def test_improvement_never_regresses(self, gate):
        assert not gate._worse(100.0, 90.0, rel_tol=0.05, abs_tol=1.0)
        assert not gate._worse(0.0, 0.0, rel_tol=0.05, abs_tol=1.0)

    def test_zero_baseline_count_metrics(self, gate):
        # 0 -> 1 is off-by-one noise (abs tol); 0 -> 5 fails
        assert not gate._worse(0.0, 1.0, rel_tol=0.05, abs_tol=1.0)
        assert gate._worse(0.0, 5.0, rel_tol=0.05, abs_tol=1.0)


class TestCompare:
    def test_identical_records_no_regressions(self, gate):
        lines, regressions = gate.compare(_record(), _record(),
                                          rel_tol=0.05, abs_tol=1.0,
                                          skip=[])
        assert regressions == []
        assert any("ILT/iccad13-01.l2_nm2" in line for line in lines)
        assert any("ILT/mean.l2_nm2" in line for line in lines)

    def test_seeded_regression_flagged_per_clip_and_mean(self, gate):
        worse = _record({("ILT", "iccad13-01", "l2_nm2"): 150.0})
        _, regressions = gate.compare(_record(), worse, rel_tol=0.05,
                                      abs_tol=1.0, skip=[])
        assert "ILT/iccad13-01.l2_nm2" in regressions
        assert "ILT/mean.l2_nm2" in regressions

    def test_skip_substring_suppresses(self, gate):
        worse = _record({("ILT", "iccad13-01", "l2_nm2"): 150.0})
        _, regressions = gate.compare(_record(), worse, rel_tol=0.05,
                                      abs_tol=1.0,
                                      skip=["iccad13-01", "mean"])
        assert regressions == []

    def test_baseline_only_method_noted_not_compared(self, gate):
        candidate = _record()
        del candidate["clips"]["PGAN-OPC"]
        del candidate["aggregates"]["PGAN-OPC"]
        lines, regressions = gate.compare(_record(), candidate,
                                          rel_tol=0.05, abs_tol=1.0,
                                          skip=[])
        assert regressions == []
        assert any("baseline only" in line for line in lines)


class TestMain:
    def _args(self, baseline, candidate, *extra):
        return ["--baseline", baseline, "--candidate", candidate,
                *extra]

    def test_identical_records_pass(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record())
        cand = _write(tmp_path, "cand.json", _record())
        assert gate.main(self._args(base, cand)) == 0
        assert "no quality regressions" in capsys.readouterr().out

    def test_seeded_regression_fails(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record())
        cand = _write(tmp_path, "cand.json",
                      _record({("ILT", "iccad13-01", "l2_nm2"): 150.0}))
        assert gate.main(self._args(base, cand)) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "ILT/iccad13-01.l2_nm2" in out

    def test_improvement_passes(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record())
        cand = _write(tmp_path, "cand.json",
                      _record({("ILT", "iccad13-01", "l2_nm2"): 50.0}))
        assert gate.main(self._args(base, cand)) == 0
        assert "improved" in capsys.readouterr().out

    def test_suite_mismatch_fails(self, gate, tmp_path, capsys):
        other = copy.deepcopy(_record())
        other["suite"] = "table2-paper"
        base = _write(tmp_path, "base.json", _record())
        cand = _write(tmp_path, "cand.json", other)
        assert gate.main(self._args(base, cand)) == 1
        assert "suite mismatch" in capsys.readouterr().out

    def test_missing_required_method_fails(self, gate, tmp_path, capsys):
        candidate = _record()
        del candidate["clips"]["PGAN-OPC"]
        base = _write(tmp_path, "base.json", _record())
        cand = _write(tmp_path, "cand.json", candidate)
        assert gate.main(self._args(base, cand, "--require",
                                    "PGAN-OPC")) == 1
        assert "required methods missing" in capsys.readouterr().out

    def test_corrupt_candidate_is_pointed_error(self, gate, tmp_path):
        base = _write(tmp_path, "base.json", _record())
        bad = tmp_path / "cand.json"
        bad.write_text("{oops")
        with pytest.raises(SystemExit, match="not valid JSON"):
            gate.main(self._args(base, str(bad)))

    def test_loose_tolerance_absorbs_regression(self, gate, tmp_path):
        base = _write(tmp_path, "base.json", _record())
        cand = _write(tmp_path, "cand.json",
                      _record({("ILT", "iccad13-01", "l2_nm2"): 150.0}))
        assert gate.main(self._args(base, cand, "--rel-tol", "2.0")) == 0
