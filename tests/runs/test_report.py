"""HTML report tests: stdlib PNG encoding, SVG charts, full renders."""

import json
import os
import struct
import zlib

import numpy as np
import pytest

from repro.bench.harness import Table2Result
from repro.bench.iccad13 import BenchmarkClip
from repro.geometry.layout import Layout
from repro.geometry.shapes import Rect
from repro.metrics.report import MaskEvaluation
from repro.runs import RunStore, render_report, write_report
from repro.runs.report import (hotspot_overlay, png_bytes, png_data_uri,
                               svg_bars, svg_curves)


class TestPngBytes:
    def test_signature_and_dimensions(self):
        rgb = np.zeros((5, 7, 3), dtype=np.uint8)
        data = png_bytes(rgb)
        assert data.startswith(b"\x89PNG\r\n\x1a\n")
        width, height = struct.unpack(">II", data[16:24])
        assert (width, height) == (7, 5)
        assert data.endswith(struct.pack(">I", zlib.crc32(b"IEND")))

    def test_pixels_round_trip_through_idat(self):
        rgb = np.arange(2 * 3 * 3, dtype=np.uint8).reshape(2, 3, 3)
        data = png_bytes(rgb)
        idat_start = data.index(b"IDAT") + 4
        (idat_len,) = struct.unpack(">I", data[idat_start - 8:
                                              idat_start - 4])
        raw = zlib.decompress(data[idat_start:idat_start + idat_len])
        rows = [raw[row * 10:(row + 1) * 10] for row in range(2)]
        assert all(r[0] == 0 for r in rows)  # filter byte 0 per row
        decoded = np.frombuffer(
            b"".join(r[1:] for r in rows), dtype=np.uint8).reshape(2, 3, 3)
        np.testing.assert_array_equal(decoded, rgb)

    def test_rejects_non_rgb_shapes(self):
        with pytest.raises(ValueError, match="expected"):
            png_bytes(np.zeros((4, 4), dtype=np.uint8))

    def test_data_uri_prefix(self):
        uri = png_data_uri(np.zeros((2, 2, 3), dtype=np.uint8))
        assert uri.startswith("data:image/png;base64,")


class TestSvgCharts:
    def test_curves_render_polylines_per_series(self):
        svg = svg_curves({"a": [(0, 1.0), (1, 0.5)],
                          "b": [(0, 2.0), (1, 1.0)]}, title="conv")
        assert svg.count("<polyline") == 2
        assert "conv" in svg

    def test_curves_drop_nonfinite_points(self):
        svg = svg_curves({"a": [(0, float("nan")), (1, 1.0), (2, 2.0)]})
        assert svg.count("<polyline") == 1

    def test_curves_empty_series_is_note(self):
        assert "no convergence samples" in svg_curves({})
        assert "no convergence samples" in \
            svg_curves({"a": [(0, float("inf"))]})

    def test_bars_one_rect_per_value(self):
        svg = svg_bars(["c1", "c2"], {"ILT": [1.0, 2.0],
                                      "GAN-OPC": [3.0, None]})
        assert svg.count("<rect") == 3
        assert "c1" in svg and "GAN-OPC" in svg

    def test_bars_without_data_is_note(self):
        assert "no data" in svg_bars([], {})
        assert "no data" in svg_bars(["c1"], {"ILT": [None]})


class TestHotspotOverlay:
    def test_markers_painted_red_at_site(self):
        target = np.zeros((8, 8))
        target[2:6, 2:6] = 1.0
        rgb = hotspot_overlay(target, extent=80.0,
                              hotspots=[{"x": 45.0, "y": 25.0,
                                         "epe": 12.0}],
                              marker_px=0)
        assert tuple(rgb[2, 4]) == (220, 38, 38)
        assert tuple(rgb[4, 4]) == (160, 160, 160)  # untouched pattern
        assert tuple(rgb[0, 0]) == (0, 0, 0)

    def test_out_of_range_sites_clamped(self):
        rgb = hotspot_overlay(np.zeros((4, 4)), extent=40.0,
                              hotspots=[{"x": 39.0, "y": 39.0,
                                         "epe": 11.0}], marker_px=2)
        assert tuple(rgb[3, 3]) == (220, 38, 38)


def _recorded_run(tmp_path, with_table2=False):
    store = RunStore(str(tmp_path / "store"))
    run = store.create("table2", argv=["--scale", "quick"], seed=1)
    run.log_manifest_record()
    for step in range(4):
        run.logger.quality_sample(step, 8.0 - step, clip="c1",
                                  method="ILT", stage="refinement")
    hotspots = [{"x": 30.0, "y": 30.0, "epe": 14.0}]
    run.logger.clip_result("c1", "ILT",
                           {"l2_nm2": 120.0, "pvband_nm2": 40.0,
                            "epe_violations": 1.0},
                           runtime_seconds=0.8, epe_hotspots=hotspots)
    run.logger.anomaly("worker_stall", pid=77, gap_seconds=4.0)
    if with_table2:
        layout = Layout(extent=64.0, rects=[Rect(16, 16, 48, 48)],
                        name="c1")
        evaluation = MaskEvaluation(name="c1", l2_px=1.0, l2_nm2=120.0,
                                    pvband_nm2=40.0, epe_violations=1,
                                    epe_hotspots=hotspots)
        result = Table2Result(
            columns={"ILT": [evaluation]},
            masks={"ILT": [np.ones((16, 16))]},
            clips=[BenchmarkClip(name="c1", layout=layout,
                                 target_area=1024.0)])
        run.save_table2(result)
    run.finish(summary={"litho": {"forward_calls": 10}})
    return run


class TestRenderReport:
    def test_report_without_table2_degrades_gracefully(self, tmp_path):
        run = _recorded_run(tmp_path)
        html = render_report(run)
        assert html.startswith("<!DOCTYPE html>")
        assert run.manifest.run_id in html
        assert "<polyline" in html
        assert "no persisted table2.json" in html
        assert "worker_stall" in html
        assert "forward_calls" in html

    def test_report_with_table2_embeds_overlay_pngs(self, tmp_path):
        run = _recorded_run(tmp_path, with_table2=True)
        html = render_report(run)
        assert "data:image/png;base64," in html
        assert "1 violating site" in html

    def test_report_is_self_contained(self, tmp_path):
        run = _recorded_run(tmp_path, with_table2=True)
        html = render_report(run)
        for external in ("http://", "https://", "src=\"/", "href="):
            assert external not in html

    def test_baseline_deltas_noted(self, tmp_path):
        baseline = _recorded_run(tmp_path / "a", with_table2=True)
        run = _recorded_run(tmp_path / "b", with_table2=True)
        html = render_report(run, baseline=baseline)
        assert baseline.manifest.run_id in html
        assert "vs the baseline" in html
        assert "(+0.0)" in html  # identical runs: zero aggregate delta

    def test_write_report_creates_file(self, tmp_path):
        run = _recorded_run(tmp_path)
        path = write_report(run, str(tmp_path / "out" / "report.html"))
        assert os.path.isfile(path)
        assert "<html" in open(path).read()

    def test_corrupt_table2_artifact_tolerated(self, tmp_path):
        run = _recorded_run(tmp_path, with_table2=True)
        with open(run.artifact_path("table2"), "w") as fh:
            fh.write("{broken")
        html = render_report(run)
        assert "no persisted table2.json" in html


class TestTable2ArtifactRoundTrip:
    def test_save_table2_then_reload(self, tmp_path):
        run = _recorded_run(tmp_path, with_table2=True)
        with open(run.artifact_path("table2")) as fh:
            reloaded = Table2Result.from_dict(json.load(fh))
        assert reloaded.clips[0].name == "c1"
        np.testing.assert_array_equal(reloaded.masks["ILT"][0],
                                      np.ones((16, 16)))
