"""Quality-view tests: stream folding, aggregates, gate records."""

import json
import math
import os

import numpy as np
import pytest

from repro.runs import (GATE_METRICS, QUALITY_SCHEMA_VERSION,
                        QualityRecordError, clip_metrics,
                        load_quality_record, quality_record_from_run,
                        run_quality, write_quality_record)
from repro.runtime import RunLogger


@pytest.fixture
def run_dir(tmp_path):
    """A synthetic run directory with a quality stream plus a phase
    stream, exercising every record type the fold understands."""
    directory = tmp_path / "run"
    directory.mkdir()
    with RunLogger(str(directory / "quality.jsonl"), "table2") as logger:
        logger.event("run_manifest", run_id="r1", command="table2")
        for step in range(3):
            logger.quality_sample(step, 10.0 - step, l2=20.0 - step,
                                  clip="iccad13-01", method="ILT",
                                  stage="refinement")
        logger.clip_result(
            "iccad13-01", "ILT",
            {"l2_nm2": 100.0, "pvband_nm2": 50.0, "epe_violations": 2.0},
            runtime_seconds=1.5,
            epe_hotspots=[{"x": 10.0, "y": 20.0, "epe": 12.5}])
        logger.clip_result(
            "iccad13-02", "ILT",
            {"l2_nm2": 200.0, "pvband_nm2": float("nan"),
             "epe_violations": 4.0},
            runtime_seconds=2.5)
        logger.clip_result("iccad13-01", "GAN-OPC", {"l2_nm2": 80.0})
        logger.anomaly("divergence", iteration=7, action="rollback")
        logger.span_summary({"litho.forward": {"count": 4,
                                               "seconds": 0.5}})
    # A second stream in the same directory (the shape a training run
    # leaves behind): the fold must merge it additively.
    with RunLogger(str(directory / "pretrain.jsonl"), "pretrain") as log2:
        log2.quality_sample(0, 5.0, stage="pretrain")
        log2.span_summary({"litho.forward": {"count": 6, "seconds": 1.0}})
    return str(directory)


class TestRunQuality:
    def test_missing_directory_is_empty(self, tmp_path):
        quality = run_quality(str(tmp_path / "nope"))
        assert quality.samples == {} and quality.clip_results == {}

    def test_samples_grouped_by_series_key(self, run_dir):
        quality = run_quality(run_dir)
        series = quality.samples["ILT/iccad13-01/refinement"]
        assert [point[0] for point in series] == [0, 1, 2]
        assert series[0][1] == 10.0 and series[0][2] == 20.0
        assert quality.samples["pretrain"] == [(0, 5.0, None)]

    def test_clip_results_and_runtimes(self, run_dir):
        quality = run_quality(run_dir)
        assert quality.methods == ["GAN-OPC", "ILT"]
        assert quality.clips == ["iccad13-01", "iccad13-02"]
        assert quality.clip_results["ILT"]["iccad13-01"]["l2_nm2"] == 100.0
        assert quality.runtimes["ILT"] == {"iccad13-01": 1.5,
                                           "iccad13-02": 2.5}

    def test_nonfinite_metric_decoded_from_string(self, run_dir):
        quality = run_quality(run_dir)
        assert math.isnan(
            quality.clip_results["ILT"]["iccad13-02"]["pvband_nm2"])

    def test_hotspots_keyed_by_method_clip(self, run_dir):
        quality = run_quality(run_dir)
        assert quality.hotspots[("ILT", "iccad13-01")] == \
            [{"x": 10.0, "y": 20.0, "epe": 12.5}]

    def test_anomalies_in_stream_order(self, run_dir):
        quality = run_quality(run_dir)
        (anomaly,) = quality.anomalies
        assert anomaly["kind"] == "divergence"
        assert anomaly["action"] == "rollback"

    def test_spans_merged_across_streams(self, run_dir):
        quality = run_quality(run_dir)
        assert quality.spans["litho.forward"] == {"count": 10,
                                                 "seconds": 1.5}

    def test_aggregates_use_finite_values_only(self, run_dir):
        aggregates = run_quality(run_dir).aggregates()
        # NaN pvband on clip 02 drops out; the mean is over clip 01 only.
        assert aggregates["ILT"]["l2_nm2"] == 150.0
        assert aggregates["ILT"]["pvband_nm2"] == 50.0
        assert aggregates["ILT"]["epe_violations"] == 3.0
        assert aggregates["ILT"]["runtime_seconds"] == 2.0
        assert aggregates["GAN-OPC"]["l2_nm2"] == 80.0
        assert "runtime_seconds" not in aggregates["GAN-OPC"]

    def test_unknown_events_skipped(self, run_dir):
        with RunLogger(os.path.join(run_dir, "extra.jsonl"), "flow") as lg:
            lg.iteration(0, {"loss": 1.0}, 0.1)
        quality = run_quality(run_dir)
        assert quality.clip_results["ILT"]["iccad13-01"]["l2_nm2"] == 100.0


class TestClipMetrics:
    def test_numeric_gate_subset_extracted(self):
        class FakeEvaluation:
            def as_dict(self):
                return {"l2_nm2": 1.0, "pvband_nm2": 2.0,
                        "epe_violations": 3, "neck_defects": 0,
                        "bridge_defects": 1, "window_pvband_nm2": None,
                        "runtime_seconds": 9.0, "name": "c"}

        metrics = clip_metrics(FakeEvaluation())
        assert metrics == {"l2_nm2": 1.0, "pvband_nm2": 2.0,
                           "epe_violations": 3.0, "neck_defects": 0.0,
                           "bridge_defects": 1.0}


class TestGateRecord:
    def test_record_from_run_round_trips(self, run_dir, tmp_path):
        record = quality_record_from_run(run_dir, "suite-x",
                                         git_rev="abc1234",
                                         config_hash="deadbeef")
        assert record["schema"] == QUALITY_SCHEMA_VERSION
        assert record["suite"] == "suite-x"
        assert record["clips"]["ILT"]["iccad13-01"]["l2_nm2"] == 100.0
        # the NaN metric is excluded from the strict-JSON gate record
        assert "pvband_nm2" not in record["clips"]["ILT"]["iccad13-02"]
        assert set(record["aggregates"]["ILT"]) <= set(GATE_METRICS)

        path = str(tmp_path / "QUALITY.json")
        write_quality_record(record, path)
        assert load_quality_record(path) == record

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(QualityRecordError, match="not found"):
            load_quality_record(str(tmp_path / "absent.json"))

    def test_load_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(QualityRecordError, match="not valid JSON"):
            load_quality_record(str(path))

    def test_load_schema_less_record(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"clips": {}}))
        with pytest.raises(QualityRecordError, match="quality schema"):
            load_quality_record(str(path))

    def test_load_record_without_clips(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": QUALITY_SCHEMA_VERSION}))
        with pytest.raises(QualityRecordError, match="no 'clips'"):
            load_quality_record(str(path))

    def test_written_record_is_strict_json(self, run_dir, tmp_path):
        record = quality_record_from_run(run_dir, "suite-x")
        path = str(tmp_path / "QUALITY.json")
        write_quality_record(record, path)

        def reject(token):
            raise AssertionError(f"non-strict literal {token!r}")
        with open(path) as fh:
            json.load(fh, parse_constant=reject)


class TestTable2GateRecord:
    def test_record_from_table2_matches_columns(self):
        from repro.metrics.report import MaskEvaluation
        from repro.runs.quality import quality_record_from_table2

        class FakeResult:
            columns = {
                "ILT": [MaskEvaluation(name="c1", l2_px=1.0, l2_nm2=10.0,
                                       pvband_nm2=4.0, epe_violations=1,
                                       runtime_seconds=1.0),
                        MaskEvaluation(name="c2", l2_px=3.0, l2_nm2=30.0,
                                       pvband_nm2=8.0, epe_violations=3,
                                       runtime_seconds=1.0)],
            }

        record = quality_record_from_table2(FakeResult(), "suite-y")
        assert record["clips"]["ILT"]["c1"]["l2_nm2"] == 10.0
        assert record["aggregates"]["ILT"]["l2_nm2"] == 20.0
        assert record["aggregates"]["ILT"]["epe_violations"] == 2.0
        assert np.isfinite(record["aggregates"]["ILT"]["pvband_nm2"])
