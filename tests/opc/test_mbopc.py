"""Unit tests for the model-based OPC engine."""

import numpy as np
import pytest

from repro.geometry import Layout, Rect
from repro.ilt.gradient import discrete_l2
from repro.opc import MbOpcConfig, ModelBasedOPC


@pytest.fixture(scope="module")
def engine(litho64, kernels64):
    return ModelBasedOPC(litho64, MbOpcConfig(iterations=5),
                         kernels=kernels64)


def _clip(extent=512.0):
    return Layout(extent=extent, rects=[
        Rect(80, 104, 432, 184),
        Rect(80, 304, 432, 384),
    ], name="mbopc-test")


class TestMbOpcConfig:
    @pytest.mark.parametrize("kwargs", [
        {"iterations": 0},
        {"gain": 0.0},
        {"gain": 2.0},
        {"max_offset": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MbOpcConfig(**kwargs)


class TestMaskAssembly:
    def test_zero_offsets_reproduce_target(self, engine):
        from repro.geometry import rasterize
        from repro.opc import fragment_layout
        layout = _clip()
        segments = fragment_layout(layout, 40.0)
        mask = engine.mask_from_segments(layout, segments)
        target = (rasterize(layout, 64) >= 0.5).astype(float)
        np.testing.assert_array_equal(mask, target)

    def test_positive_offset_grows_mask(self, engine):
        from repro.opc import fragment_layout
        layout = _clip()
        segments = [s.with_offset(16.0) for s in fragment_layout(layout, 40.0)]
        grown = engine.mask_from_segments(layout, segments)
        zero = engine.mask_from_segments(
            layout, fragment_layout(layout, 40.0))
        assert grown.sum() > zero.sum()

    def test_negative_offset_shrinks_mask(self, engine):
        from repro.opc import fragment_layout
        layout = _clip()
        segments = [s.with_offset(-16.0) for s in fragment_layout(layout, 40.0)]
        shrunk = engine.mask_from_segments(layout, segments)
        zero = engine.mask_from_segments(
            layout, fragment_layout(layout, 40.0))
        assert shrunk.sum() < zero.sum()


class TestOptimize:
    def test_improves_printability(self, engine, sim64):
        """MB-OPC must beat printing the raw target (the Figure 1
        'conventional flow works' check)."""
        from repro.geometry import rasterize
        layout = _clip()
        target = (rasterize(layout, 64) >= 0.5).astype(float)
        baseline = discrete_l2(sim64.wafer_image(target), target)
        result = engine.optimize(layout)
        assert result.l2 < baseline

    def test_histories_and_runtime(self, engine):
        result = engine.optimize(_clip())
        assert len(result.l2_history) == engine.config.iterations + 1
        assert result.runtime_seconds > 0

    def test_offsets_clamped(self, engine):
        result = engine.optimize(_clip())
        limit = engine.config.max_offset
        assert all(abs(s.offset) <= limit + 1e-9 for s in result.segments)

    def test_mask_binary(self, engine):
        result = engine.optimize(_clip())
        assert set(np.unique(result.mask)) <= {0.0, 1.0}
