"""Unit tests for the model-based OPC engine."""

import numpy as np
import pytest

from repro.geometry import Layout, Rect
from repro.ilt.gradient import discrete_l2
from repro.opc import MbOpcConfig, ModelBasedOPC


@pytest.fixture(scope="module")
def engine(litho64, kernels64):
    return ModelBasedOPC(litho64, MbOpcConfig(iterations=5),
                         kernels=kernels64)


def _clip(extent=512.0):
    return Layout(extent=extent, rects=[
        Rect(80, 104, 432, 184),
        Rect(80, 304, 432, 384),
    ], name="mbopc-test")


class TestMbOpcConfig:
    @pytest.mark.parametrize("kwargs", [
        {"iterations": 0},
        {"gain": 0.0},
        {"gain": 2.0},
        {"max_offset": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MbOpcConfig(**kwargs)


class TestMaskAssembly:
    def test_zero_offsets_reproduce_target(self, engine):
        from repro.geometry import rasterize
        from repro.opc import fragment_layout
        layout = _clip()
        segments = fragment_layout(layout, 40.0)
        mask = engine.mask_from_segments(layout, segments)
        target = (rasterize(layout, 64) >= 0.5).astype(float)
        np.testing.assert_array_equal(mask, target)

    def test_positive_offset_grows_mask(self, engine):
        from repro.opc import fragment_layout
        layout = _clip()
        segments = [s.with_offset(16.0) for s in fragment_layout(layout, 40.0)]
        grown = engine.mask_from_segments(layout, segments)
        zero = engine.mask_from_segments(
            layout, fragment_layout(layout, 40.0))
        assert grown.sum() > zero.sum()

    def test_negative_offset_shrinks_mask(self, engine):
        from repro.opc import fragment_layout
        layout = _clip()
        segments = [s.with_offset(-16.0) for s in fragment_layout(layout, 40.0)]
        shrunk = engine.mask_from_segments(layout, segments)
        zero = engine.mask_from_segments(
            layout, fragment_layout(layout, 40.0))
        assert shrunk.sum() < zero.sum()


class TestOptimize:
    def test_improves_printability(self, engine, sim64):
        """MB-OPC must beat printing the raw target (the Figure 1
        'conventional flow works' check)."""
        from repro.geometry import rasterize
        layout = _clip()
        target = (rasterize(layout, 64) >= 0.5).astype(float)
        baseline = discrete_l2(sim64.wafer_image(target), target)
        result = engine.optimize(layout)
        assert result.l2 < baseline

    def test_histories_and_runtime(self, engine):
        result = engine.optimize(_clip())
        assert len(result.l2_history) == engine.config.iterations + 1
        assert result.runtime_seconds > 0

    def test_offsets_clamped(self, engine):
        result = engine.optimize(_clip())
        limit = engine.config.max_offset
        assert all(abs(s.offset) <= limit + 1e-9 for s in result.segments)

    def test_mask_binary(self, engine):
        result = engine.optimize(_clip())
        assert set(np.unique(result.mask)) <= {0.0, 1.0}


class TestEpeClamping:
    def test_all_dark_wafer_clamps_to_negative_range(self, engine):
        from repro.opc.fragments import fragment_layout

        layout = _clip()
        segments = fragment_layout(layout, 40.0)
        wafer = np.zeros((64, 64))
        epes = engine.measure_segment_epes(wafer, layout, segments)
        assert np.all(epes == -engine.config.search_range)

    def test_all_bright_wafer_clamps_to_positive_range(self, litho64,
                                                       kernels64):
        from repro.opc.fragments import fragment_layout

        # Short search range keeps the outward walk inside the raster,
        # so a fully-bright wafer yields +inf -> clamped to +range.
        engine = ModelBasedOPC(litho64,
                               MbOpcConfig(iterations=1, search_range=40.0),
                               kernels=kernels64)
        layout = _clip()
        segments = fragment_layout(layout, 40.0)
        wafer = np.ones((64, 64))
        epes = engine.measure_segment_epes(wafer, layout, segments)
        assert np.all(epes == engine.config.search_range)


class TestStripWindowClipping:
    def test_strip_displaced_outside_window_is_skipped(self, engine):
        from repro.opc.fragments import EdgeSegment

        layout = Layout(extent=512.0, rects=[Rect(0.0, 104, 104, 184)])
        base = (engine.mask_from_segments(layout, []) >= 0.5)
        # An edge on the window boundary pushed outward sweeps a strip
        # entirely outside the clip: intersection fails, strip skipped.
        segment = EdgeSegment(0, (0.0, 104.0), (0.0, 184.0), (-1, 0),
                              offset=16.0)
        mask = engine.mask_from_segments(layout, [segment]) >= 0.5
        assert np.array_equal(mask, base)
