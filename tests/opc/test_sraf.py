"""Unit tests for rule-based SRAF insertion."""

import pytest

from repro.geometry import Layout, Rect, binarize, rasterize
from repro.metrics import mask_pv_band, squared_l2
from repro.opc import (SrafConfig, assisted_mask_layout, candidate_bars,
                       insert_srafs)


def _wire_clip():
    return Layout(extent=512.0, rects=[Rect(96, 216, 416, 296)], name="w")


class TestSrafConfig:
    @pytest.mark.parametrize("kwargs", [
        {"width": 0.0},
        {"offset": -1.0},
        {"min_length": 0.0},
        {"end_pullback": -1.0},
        {"clearance": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SrafConfig(**kwargs)


class TestCandidateBars:
    def test_horizontal_wire_gets_two_long_bars(self):
        rect = Rect(0, 0, 400, 80)
        config = SrafConfig()
        bars = candidate_bars(rect, config)
        horizontal = [b for b in bars if b.is_horizontal and b.height == config.width]
        assert len(horizontal) >= 2
        above = [b for b in horizontal if b.y0 >= rect.y1]
        below = [b for b in horizontal if b.y1 <= rect.y0]
        assert above and below
        assert above[0].y0 - rect.y1 == config.offset

    def test_short_edges_skipped(self):
        rect = Rect(0, 0, 80, 80)  # square: all edges below min_length+pullback
        bars = candidate_bars(rect, SrafConfig(min_length=100.0))
        assert bars == []

    def test_end_pullback_applied(self):
        rect = Rect(0, 0, 400, 80)
        config = SrafConfig(end_pullback=30.0)
        bars = candidate_bars(rect, config)
        for bar in bars:
            if bar.is_horizontal:
                assert bar.x0 == rect.x0 + 30.0
                assert bar.x1 == rect.x1 - 30.0


class TestInsertSrafs:
    def test_bars_stay_in_window(self):
        # Wire close to the window edge: outer bar must be dropped.
        layout = Layout(extent=512.0, rects=[Rect(96, 8, 416, 88)])
        bars = insert_srafs(layout)
        layout_with = Layout(extent=512.0, rects=layout.rects + bars)
        layout_with.validate()

    def test_clearance_against_other_patterns(self):
        # Two wires 220nm apart: bars between them would violate
        # clearance to the opposite wire at default offset+width.
        layout = Layout(extent=512.0, rects=[
            Rect(96, 100, 416, 180),
            Rect(96, 284, 416, 364),
        ])
        bars = insert_srafs(layout, SrafConfig(offset=80.0, width=24.0,
                                               clearance=80.0))
        for bar in bars:
            for rect in layout.rects:
                assert bar.gap(rect) >= 80.0 - 1e-9 or bar.gap(rect) == 0.0

    def test_bars_do_not_print(self, sim64):
        """The defining SRAF property: assist bars must stay below the
        resist threshold."""
        clip = _wire_clip()
        bars = insert_srafs(clip)
        assert bars, "expected bars around an isolated wire"
        assisted = binarize(rasterize(assisted_mask_layout(clip), 64))
        wafer = sim64.wafer_image(assisted)
        bar_region = binarize(rasterize(Layout(extent=512.0, rects=bars), 64))
        assert (wafer * bar_region).sum() == 0.0

    def test_bars_reduce_pv_band(self, sim64):
        """SRAFs flatten dose sensitivity of isolated features."""
        clip = _wire_clip()
        target = binarize(rasterize(clip, 64))
        assisted = binarize(rasterize(assisted_mask_layout(clip), 64))
        assert mask_pv_band(sim64, assisted) <= mask_pv_band(sim64, target)

    def test_bars_do_not_hurt_nominal_l2(self, sim64):
        clip = _wire_clip()
        target = binarize(rasterize(clip, 64))
        assisted = binarize(rasterize(assisted_mask_layout(clip), 64))
        plain_l2 = squared_l2(sim64.wafer_image(target), target)
        sraf_l2 = squared_l2(sim64.wafer_image(assisted), target)
        assert sraf_l2 <= plain_l2 + 8

    def test_assisted_layout_name(self):
        assisted = assisted_mask_layout(_wire_clip())
        assert assisted.name == "w+sraf"
        assert len(assisted) > 1


class TestBarToBarClearance:
    def test_facing_bars_respect_clearance(self):
        """Bars of facing wires collide in the channel between them:
        the first is accepted, the second dropped (bar-vs-bar rule, not
        bar-vs-pattern — both bars clear both patterns)."""
        layout = Layout(extent=512.0, rects=[
            Rect(100, 100, 400, 140),
            Rect(100, 340, 400, 380),
        ], name="facing")
        config = SrafConfig(width=24.0, offset=80.0, clearance=40.0)
        bars = insert_srafs(layout, config)
        channel = [b for b in bars if 140.0 <= b.y0 and b.y1 <= 340.0]
        assert len(channel) == 1
        # The survivor belongs to the first wire and clears everything.
        assert channel[0].y0 == 220.0
        for rect in layout.rects:
            assert channel[0].gap(rect) >= config.clearance - 1e-9
