"""Unit tests for edge fragmentation."""

import pytest

from repro.geometry import Layout, Rect
from repro.opc import EdgeSegment, fragment_layout, fragment_rect


class TestFragmentRect:
    def test_small_rect_one_fragment_per_edge(self):
        rect = Rect(0, 0, 30, 30)
        segments = fragment_rect(rect, 0, max_fragment=40.0)
        assert len(segments) == 4
        normals = {s.normal for s in segments}
        assert normals == {(0, -1), (0, 1), (-1, 0), (1, 0)}

    def test_long_edges_fractured(self):
        rect = Rect(0, 0, 100, 30)
        segments = fragment_rect(rect, 0, max_fragment=40.0)
        horizontal_edges = [s for s in segments if s.normal[1] != 0]
        # 100nm edge at <=40nm pitch -> 3 fragments per horizontal edge.
        assert len(horizontal_edges) == 6

    def test_fragment_lengths_bounded(self):
        segments = fragment_rect(Rect(0, 0, 130, 80), 0, max_fragment=40.0)
        assert all(s.length <= 40.0 + 1e-9 for s in segments)

    def test_fragments_tile_each_edge(self):
        rect = Rect(0, 0, 100, 60)
        segments = fragment_rect(rect, 3, max_fragment=30.0)
        bottom = sorted((s for s in segments if s.normal == (0, -1)),
                        key=lambda s: s.start[0])
        assert bottom[0].start[0] == 0.0
        assert bottom[-1].end[0] == 100.0
        for a, b in zip(bottom[:-1], bottom[1:]):
            assert a.end[0] == b.start[0]
        assert all(s.rect_index == 3 for s in segments)

    def test_invalid_pitch(self):
        with pytest.raises(ValueError):
            fragment_rect(Rect(0, 0, 10, 10), 0, max_fragment=0.0)


class TestEdgeSegment:
    def test_midpoint(self):
        seg = EdgeSegment(0, (0, 0), (40, 0), (0, -1))
        assert seg.midpoint == (20.0, 0.0)

    def test_with_offset_immutably(self):
        seg = EdgeSegment(0, (0, 0), (40, 0), (0, -1))
        moved = seg.with_offset(5.0)
        assert moved.offset == 5.0
        assert seg.offset == 0.0

    def test_moved_strip_outward(self):
        seg = EdgeSegment(0, (0, 10), (40, 10), (0, 1), offset=6.0)
        strip = seg.moved_strip()
        assert strip == Rect(0, 10, 40, 16)

    def test_moved_strip_inward(self):
        seg = EdgeSegment(0, (0, 10), (40, 10), (0, 1), offset=-6.0)
        strip = seg.moved_strip()
        assert strip == Rect(0, 4, 40, 10)

    def test_moved_strip_vertical_edge(self):
        seg = EdgeSegment(0, (10, 0), (10, 40), (-1, 0), offset=5.0)
        assert seg.moved_strip() == Rect(5, 0, 10, 40)

    def test_zero_offset_strip_rejected(self):
        seg = EdgeSegment(0, (0, 0), (40, 0), (0, -1))
        with pytest.raises(ValueError):
            seg.moved_strip()


class TestFragmentLayout:
    def test_all_rects_covered(self):
        layout = Layout(extent=500.0, rects=[Rect(0, 0, 100, 80),
                                             Rect(200, 200, 280, 400)])
        segments = fragment_layout(layout, max_fragment=40.0)
        indices = {s.rect_index for s in segments}
        assert indices == {0, 1}
