"""Unit tests for mask rule checking and cleanup."""

import numpy as np
import pytest

from repro.opc import MrcConfig, check_mask, cleanup_mask

PIXEL = 8.0  # nm


def _base_mask(grid=32):
    mask = np.zeros((grid, grid))
    mask[10:20, 4:28] = 1.0  # healthy 80nm feature
    return mask


class TestMrcConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MrcConfig(min_feature=0.0)
        with pytest.raises(ValueError):
            MrcConfig(min_area=-1.0)


class TestCheckMask:
    def test_clean_mask(self):
        report = check_mask(_base_mask(), PIXEL)
        assert report.clean
        assert report.total == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            check_mask(np.zeros((4, 4, 4)), PIXEL)
        with pytest.raises(ValueError):
            check_mask(np.zeros((4, 4)), 0.0)

    def test_narrow_feature_flagged(self):
        mask = _base_mask()
        mask[25:27, 4:28] = 1.0  # 16nm sliver < 32nm min feature... 2px=16nm
        report = check_mask(mask, PIXEL, MrcConfig(min_feature=32.0))
        assert report.width_violations >= 1

    def test_narrow_space_flagged(self):
        mask = np.zeros((32, 32))
        mask[8:16, 4:28] = 1.0
        mask[18:26, 4:28] = 1.0  # 2px = 16nm gap < 32nm min space
        report = check_mask(mask, PIXEL, MrcConfig(min_space=32.0))
        assert report.space_violations >= 1

    def test_wide_space_clean(self):
        mask = np.zeros((32, 32))
        mask[4:12, 4:28] = 1.0
        mask[20:28, 4:28] = 1.0  # 8px = 64nm gap
        report = check_mask(mask, PIXEL, MrcConfig(min_space=32.0))
        assert report.space_violations == 0

    def test_border_background_not_a_space_violation(self):
        mask = np.zeros((32, 32))
        mask[1:9, 4:28] = 1.0  # 1px of background above, on the border
        report = check_mask(mask, PIXEL, MrcConfig(min_space=32.0))
        assert report.space_violations == 0

    def test_small_island_flagged(self):
        mask = _base_mask()
        mask[26, 26] = 1.0  # 64 nm^2 island << 1600 nm^2
        report = check_mask(mask, PIXEL)
        assert report.small_islands == 1

    def test_pinhole_flagged(self):
        mask = _base_mask()
        mask[14, 10] = 0.0  # 1px hole inside the feature
        report = check_mask(mask, PIXEL)
        assert report.pinholes == 1

    def test_background_region_touching_border_not_pinhole(self):
        report = check_mask(_base_mask(), PIXEL)
        assert report.pinholes == 0


class TestCleanupMask:
    def test_removes_small_islands(self):
        mask = _base_mask()
        mask[26, 26] = 1.0
        cleaned = cleanup_mask(mask, PIXEL)
        assert cleaned[26, 26] == 0.0
        assert check_mask(cleaned, PIXEL).small_islands == 0

    def test_fills_pinholes(self):
        mask = _base_mask()
        mask[14, 10] = 0.0
        cleaned = cleanup_mask(mask, PIXEL)
        assert cleaned[14, 10] == 1.0
        assert check_mask(cleaned, PIXEL).pinholes == 0

    def test_keeps_large_features(self):
        mask = _base_mask()
        cleaned = cleanup_mask(mask, PIXEL)
        np.testing.assert_array_equal(cleaned, mask)

    def test_idempotent(self):
        mask = _base_mask()
        mask[26, 26] = 1.0
        mask[14, 10] = 0.0
        once = cleanup_mask(mask, PIXEL)
        twice = cleanup_mask(once, PIXEL)
        np.testing.assert_array_equal(once, twice)

    def test_cleanup_barely_affects_printing(self, sim32, litho32):
        """Dropping sub-resolution islands must not change the wafer
        image materially (they do not expose)."""
        from repro.ilt import ILTConfig, ILTOptimizer
        from repro.metrics import squared_l2
        target = _base_mask()
        result = ILTOptimizer(litho32, ILTConfig(max_iterations=60),
                              kernels=sim32.kernels).optimize(target)
        # Only remove truly sub-resolution debris (< 5 px); larger ILT
        # islands act as assist features and must be kept.
        config = MrcConfig(min_area=320.0)
        cleaned = cleanup_mask(result.mask, litho32.pixel_nm, config)
        before = squared_l2(sim32.wafer_image(result.mask), target)
        after = squared_l2(sim32.wafer_image(cleaned), target)
        assert after <= before + 8


class TestEdgeCases:
    def test_empty_mask_is_clean(self):
        report = check_mask(np.zeros((32, 32)), PIXEL)
        assert report.clean
        assert report.total == 0

    def test_large_enclosed_hole_is_not_a_pinhole(self):
        mask = np.zeros((32, 32))
        mask[2:30, 2:30] = 1.0
        mask[8:24, 8:24] = 0.0  # 16x16 px = (128nm)^2 >= min_area
        report = check_mask(mask, PIXEL,
                            MrcConfig(min_feature=16.0, min_space=16.0,
                                      min_area=1600.0))
        assert report.pinholes == 0

    def test_cleanup_preserves_large_holes(self):
        mask = np.zeros((32, 32))
        mask[2:30, 2:30] = 1.0
        mask[8:24, 8:24] = 0.0
        cleaned = cleanup_mask(mask, PIXEL)
        assert np.array_equal(cleaned, mask)
