"""Telemetry schema contract tests (ISSUE 2, satellite 4).

Every JSONL line the substrate emits must parse as *strict* JSON and
validate against the checked-in ``telemetry_schema.json``; the litho
counters reported per iteration must add up to exactly what the
:class:`LithoEngine` instance actually executed.
"""

import json
import os

import numpy as np
import pytest

from repro.core import (GanOpcConfig, GanOpcFlow, GanOpcTrainer,
                        ILTGuidedPretrainer, MaskGenerator,
                        PairDiscriminator)
from repro.ilt import ILTConfig
from repro.layoutgen import SyntheticDataset
from repro.litho import LithoEngine
from repro.runtime import (RunConfig, RunLogger, TelemetrySchemaError,
                           sanitize, telemetry_schema, validate_record)
from repro.runtime.telemetry import SCHEMA_PATH, SCHEMA_VERSION


def _strict_loads(line):
    """json.loads that rejects the non-standard NaN/Infinity literals."""
    def reject(token):
        raise AssertionError(f"non-strict JSON literal {token!r} emitted")
    return json.loads(line, parse_constant=reject)


def _read_records(path):
    with open(path, "r", encoding="utf-8") as fh:
        return [_strict_loads(line) for line in fh if line.strip()]


@pytest.fixture(scope="module")
def dataset(litho32, kernels32):
    return SyntheticDataset(litho32, size=4, seed=5, kernels=kernels32,
                            ilt_config=ILTConfig(max_iterations=20))


class TestSchemaFile:
    def test_checked_in_schema_is_wellformed(self):
        with open(SCHEMA_PATH, "r", encoding="utf-8") as fh:
            schema = json.load(fh)
        assert schema == telemetry_schema()
        assert schema["version"] == SCHEMA_VERSION
        assert set(schema["common"]["required"]) == {"schema", "event",
                                                     "phase", "ts"}
        for event, spec in schema["events"].items():
            assert set(spec) == {"required", "optional"}, event


class TestSanitize:
    def test_nonfinite_floats_become_strings(self):
        assert sanitize(float("nan")) == "nan"
        assert sanitize(float("inf")) == "inf"
        assert sanitize(float("-inf")) == "-inf"

    def test_numpy_scalars_become_python(self):
        out = sanitize({"a": np.float64(1.5), "b": np.int32(3),
                        "c": [np.float32("nan")]})
        assert out == {"a": 1.5, "b": 3, "c": ["nan"]}
        assert type(out["a"]) is float and type(out["b"]) is int

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            sanitize(object())


class TestValidateRecord:
    def _iteration(self, **extra):
        record = {"schema": SCHEMA_VERSION, "event": "iteration",
                  "phase": "pretrain", "ts": 1.0, "iteration": 0,
                  "losses": {"litho_error": 12.5}, "seconds": 0.1}
        record.update(extra)
        return record

    def test_valid_record_passes(self):
        validate_record(self._iteration())
        validate_record(self._iteration(losses={"l": "nan"},
                                        action="rollback",
                                        litho={"forward_calls": 2}))

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("ts"),
        lambda r: r.pop("losses"),
        lambda r: r.update(event="no_such_event"),
        lambda r: r.update(schema=SCHEMA_VERSION + 1),
        lambda r: r.update(stray_field=1),
        lambda r: r.update(iteration=1.5),
        lambda r: r.update(losses={"l": "NaN"}),  # wrong spelling
        lambda r: r.update(litho={"forward_calls": "nan"}),
    ])
    def test_invalid_record_rejected(self, mutate):
        record = self._iteration()
        mutate(record)
        with pytest.raises(TelemetrySchemaError):
            validate_record(record)

    def test_logger_refuses_invalid_event(self, tmp_path):
        logger = RunLogger(str(tmp_path / "t.jsonl"), "pretrain")
        with pytest.raises(TelemetrySchemaError):
            logger.event("no_such_event", iteration=0)
        logger.close()


class TestSpanSummary:
    def _record(self, **extra):
        record = {"schema": SCHEMA_VERSION, "event": "span_summary",
                  "phase": "flow", "ts": 1.0,
                  "spans": {"ilt.step": {"count": 3, "seconds": 0.5}}}
        record.update(extra)
        return record

    def test_valid_record_passes(self):
        validate_record(self._record())
        validate_record(self._record(wall_seconds=1.0, coverage=0.93,
                                     trace_file="trace.json"))

    @pytest.mark.parametrize("spans", [
        {"s": {"count": 3}},                              # missing seconds
        {"s": {"count": 3, "seconds": 0.5, "extra": 1}},  # stray key
        {"s": {"count": 1.5, "seconds": 0.5}},            # non-int count
        {"s": {"count": 1, "seconds": "nan"}},            # non-finite
        {"s": 0.5},                                       # not an object
    ])
    def test_malformed_span_map_rejected(self, spans):
        with pytest.raises(TelemetrySchemaError):
            validate_record(self._record(spans=spans))

    def test_logger_helper_coerces_and_round_trips(self, tmp_path):
        from repro.obs import trace

        path = str(tmp_path / "t.jsonl")
        with trace.tracing() as tracer:
            with tracer.span("work"):
                pass
        with RunLogger(path, "flow") as logger:
            logger.span_summary(tracer.summary(),
                                wall_seconds=tracer.wall_seconds(),
                                coverage=tracer.coverage(),
                                trace_file="trace.json")
        (record,) = _read_records(path)
        validate_record(record)
        assert record["spans"]["work"]["count"] == 1
        assert isinstance(record["spans"]["work"]["count"], int)
        assert record["trace_file"] == "trace.json"

    def test_harness_emits_span_summary_when_tracing(self, litho32,
                                                     kernels32, dataset,
                                                     tmp_path):
        from repro.obs import trace

        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=2,
                              seed=7)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(1))
        pre = ILTGuidedPretrainer(generator, litho32, config,
                                  kernels=kernels32)
        with trace.tracing():
            pre.train(dataset, 2,
                      runtime=RunConfig(telemetry_dir=str(tmp_path)))
        records = _read_records(os.path.join(str(tmp_path),
                                             "pretrain.jsonl"))
        summaries = [r for r in records if r["event"] == "span_summary"]
        assert len(summaries) == 1
        spans = summaries[0]["spans"]
        assert "pretrain.step" in spans
        assert spans["pretrain.step"]["count"] == 2
        assert "litho.adjoint" in spans

    def test_no_span_summary_without_tracer(self, litho32, kernels32,
                                            dataset, tmp_path):
        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=2,
                              seed=7)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(1))
        pre = ILTGuidedPretrainer(generator, litho32, config,
                                  kernels=kernels32)
        pre.train(dataset, 1, runtime=RunConfig(telemetry_dir=str(tmp_path)))
        records = _read_records(os.path.join(str(tmp_path),
                                             "pretrain.jsonl"))
        assert all(r["event"] != "span_summary" for r in records)


class TestScriptedRun:
    ITERATIONS = 3

    def _run(self, litho32, kernels32, dataset, telemetry_dir):
        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=2,
                              seed=7)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(1))
        pre = ILTGuidedPretrainer(generator, litho32, config,
                                  kernels=kernels32)
        before = pre.engine.stats.snapshot()
        pre.train(dataset, self.ITERATIONS,
                  runtime=RunConfig(telemetry_dir=telemetry_dir))
        return pre.engine.stats.delta(before)

    def test_every_line_validates(self, litho32, kernels32, dataset,
                                  tmp_path):
        self._run(litho32, kernels32, dataset, str(tmp_path))
        records = _read_records(os.path.join(str(tmp_path),
                                             "pretrain.jsonl"))
        assert records, "no telemetry written"
        for record in records:
            validate_record(record)
            assert record["phase"] == "pretrain"
        events = [r["event"] for r in records]
        assert events[0] == "run_start"
        assert events[-1] == "run_end"
        assert events.count("iteration") == self.ITERATIONS

    def test_litho_counts_match_engine_invocations(self, litho32,
                                                   kernels32, dataset,
                                                   tmp_path):
        engine_delta = self._run(litho32, kernels32, dataset,
                                 str(tmp_path))
        records = _read_records(os.path.join(str(tmp_path),
                                             "pretrain.jsonl"))
        reported = {}
        for record in records:
            for key, value in (record.get("litho") or {}).items():
                reported[key] = reported.get(key, 0) + value
        # Telemetry deltas (iterations + run_end) must add up exactly to
        # what the engine instance executed during the run.
        for key in ("forward_calls", "forward_masks",
                    "gradient_calls", "gradient_masks"):
            assert reported[key] == engine_delta[key], key
        # Algorithm 2 performs exactly one adjoint evaluation per
        # iteration over the full mini-batch.
        assert engine_delta["gradient_calls"] == self.ITERATIONS
        assert engine_delta["gradient_masks"] == self.ITERATIONS * 2

    def test_iteration_records_carry_losses_and_timing(self, litho32,
                                                       kernels32, dataset,
                                                       tmp_path):
        self._run(litho32, kernels32, dataset, str(tmp_path))
        records = _read_records(os.path.join(str(tmp_path),
                                             "pretrain.jsonl"))
        iterations = [r for r in records if r["event"] == "iteration"]
        for index, record in enumerate(iterations):
            assert record["iteration"] == index
            assert "litho_error" in record["losses"]
            assert record["seconds"] >= 0.0
            assert "generator" in record["grad_norms"]


class TestGanTelemetry:
    def test_every_line_validates(self, dataset, tmp_path):
        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=2,
                              seed=7)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(1))
        discriminator = PairDiscriminator(
            config.grid, config.discriminator_channels,
            rng=np.random.default_rng(2))
        GanOpcTrainer(generator, discriminator, config).train(
            dataset, 2, runtime=RunConfig(telemetry_dir=str(tmp_path)))

        records = _read_records(os.path.join(str(tmp_path), "gan.jsonl"))
        for record in records:
            validate_record(record)
            assert record["phase"] == "gan"
        iterations = [r for r in records if r["event"] == "iteration"]
        assert len(iterations) == 2
        assert set(iterations[0]["losses"]) == {
            "generator_loss", "discriminator_loss", "l2_to_reference"}
        assert set(iterations[0]["grad_norms"]) == {"generator",
                                                    "discriminator"}


class TestFlowTelemetry:
    def test_flow_record_validates(self, litho32, kernels32, dataset,
                                   tmp_path):
        path = str(tmp_path / "flow.jsonl")
        generator = MaskGenerator((4, 8), rng=np.random.default_rng(1))
        engine = LithoEngine.for_kernels(kernels32)
        flow = GanOpcFlow(generator, litho32,
                          ILTConfig(max_iterations=5), engine=engine,
                          logger=RunLogger(path, "flow"))
        flow.optimize(dataset.target(0))
        records = _read_records(path)
        assert len(records) == 1
        validate_record(records[0])
        record = records[0]
        assert record["event"] == "flow"
        assert record["refine_iterations"] >= 1
        assert record["litho"]["forward_calls"] >= 1


class TestWorkerSpanSummary:
    """Schema round-trip for the ISSUE 8 fleet-telemetry record types."""

    def _record(self, **extra):
        record = {"schema": SCHEMA_VERSION, "event": "worker_span_summary",
                  "phase": "flow", "ts": 1.0, "pid": 4242,
                  "spans": {"litho.forward": {"count": 8, "seconds": 0.4}}}
        record.update(extra)
        return record

    def test_valid_record_passes(self):
        validate_record(self._record())
        validate_record(self._record(tasks=8, busy_seconds=0.5,
                                     dropped_spans=0,
                                     litho={"forward_calls": 8}))

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("pid"),
        lambda r: r.pop("spans"),
        lambda r: r.update(pid=1.5),
        lambda r: r.update(spans={"s": {"count": 1}}),
        lambda r: r.update(litho={"forward_calls": "nan"}),
        lambda r: r.update(stray=1),
    ])
    def test_invalid_record_rejected(self, mutate):
        record = self._record()
        mutate(record)
        with pytest.raises(TelemetrySchemaError):
            validate_record(record)

    def test_logger_helper_coerces_and_round_trips(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with RunLogger(path, "flow") as logger:
            logger.worker_span_summary(
                np.int64(4242),
                {"litho.forward": {"count": np.int64(8),
                                   "seconds": np.float64(0.4)}},
                tasks=8, busy_seconds=0.5, dropped_spans=0,
                litho={"forward_calls": 8.0})
        (record,) = _read_records(path)
        validate_record(record)
        assert record["pid"] == 4242
        assert type(record["pid"]) is int
        assert record["spans"]["litho.forward"] == {"count": 8,
                                                    "seconds": 0.4}
        assert record["litho"]["forward_calls"] == 8.0


class TestResourceSample:
    def _record(self, **extra):
        record = {"schema": SCHEMA_VERSION, "event": "resource_sample",
                  "phase": "monitor", "ts": 1.0, "pid": 4242,
                  "rss_bytes": 1048576.0, "cpu_seconds": 0.25}
        record.update(extra)
        return record

    def test_valid_record_passes(self):
        validate_record(self._record())
        validate_record(self._record(num_threads=3, cpu_utilization=0.8))

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("pid"),
        lambda r: r.pop("rss_bytes"),
        lambda r: r.pop("cpu_seconds"),
        lambda r: r.update(num_threads=1.5),
        lambda r: r.update(rss_bytes="nan"),
        lambda r: r.update(stray=1),
    ])
    def test_invalid_record_rejected(self, mutate):
        record = self._record()
        mutate(record)
        with pytest.raises(TelemetrySchemaError):
            validate_record(record)

    def test_logger_helper_coerces_and_round_trips(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with RunLogger(path, "monitor") as logger:
            logger.resource_sample(np.int64(4242),
                                   rss_bytes=np.float64(1048576.0),
                                   cpu_seconds=np.float64(0.25),
                                   num_threads=3, cpu_utilization=0.8)
        (record,) = _read_records(path)
        validate_record(record)
        assert type(record["pid"]) is int
        assert record["rss_bytes"] == 1048576.0
        assert record["cpu_utilization"] == 0.8
