"""Tests for the repro.runtime robustness substrate."""
