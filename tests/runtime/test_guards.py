"""Fault-injection coverage for the divergence guard rails (ISSUE 2,
satellite 3).

A loss is monkeypatched to go NaN at a chosen iteration and each
divergence policy must do exactly what it advertises: ``raise`` aborts
with :class:`DivergenceError`, ``rollback`` restores the last
checkpointed weights and backs off the learning rate, ``skip`` leaves
weights untouched for that batch and continues.  Recovery budgets and
gradient clipping are covered at harness level.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (GanOpcConfig, GanOpcTrainer, ILTGuidedPretrainer,
                        MaskGenerator, PairDiscriminator)
from repro.ilt import ILTConfig
from repro.layoutgen import SyntheticDataset
from repro.runtime import (Checkpointer, DivergenceError, RunConfig,
                           TrainingHarness, nonfinite_entries)

ITERATIONS = 4
NAN_AT = 2


@pytest.fixture(scope="module")
def dataset(litho32, kernels32):
    return SyntheticDataset(litho32, size=4, seed=5, kernels=kernels32,
                            ilt_config=ILTConfig(max_iterations=20))


def _config():
    return GanOpcConfig(grid=32, generator_channels=(4, 8),
                        discriminator_channels=(4, 8), batch_size=2,
                        seed=7)


def _pretrainer(litho32, kernels32, seed=1):
    generator = MaskGenerator((4, 8), rng=np.random.default_rng(seed))
    return ILTGuidedPretrainer(generator, litho32, _config(),
                               kernels=kernels32)


def _poison(pretrainer, at_iterations):
    """Make ``batch_litho_gradient`` return NaN errors at the given
    iteration indices (counting calls, one per training iteration)."""
    original = pretrainer.batch_litho_gradient
    calls = {"n": 0}

    def poisoned(masks, targets):
        errors, gradients = original(masks, targets)
        if calls["n"] in at_iterations:
            errors = np.full_like(errors, np.nan)
        calls["n"] += 1
        return errors, gradients

    pretrainer.batch_litho_gradient = poisoned


class TestRaisePolicy:
    def test_aborts_with_iteration_and_values(self, litho32, kernels32,
                                              dataset, tmp_path):
        pre = _pretrainer(litho32, kernels32)
        _poison(pre, {NAN_AT})
        with pytest.raises(DivergenceError, match="litho_error") as info:
            pre.train(dataset, ITERATIONS,
                      runtime=RunConfig(policy="raise"))
        assert info.value.iteration == NAN_AT
        assert "nan" in str(info.value).lower()


class TestSkipPolicy:
    def test_run_completes_and_batch_is_skipped(self, litho32, kernels32,
                                                dataset):
        pre = _pretrainer(litho32, kernels32)
        _poison(pre, {NAN_AT})
        history = pre.train(dataset, ITERATIONS,
                            runtime=RunConfig(policy="skip"))
        assert len(history.litho_error) == ITERATIONS
        assert np.isnan(history.litho_error[NAN_AT])
        finite = [v for i, v in enumerate(history.litho_error)
                  if i != NAN_AT]
        assert np.all(np.isfinite(finite))

    def test_skip_leaves_weights_untouched(self, litho32, kernels32,
                                           dataset):
        poisoned = _pretrainer(litho32, kernels32, seed=1)
        _poison(poisoned, {NAN_AT})
        clean = _pretrainer(litho32, kernels32, seed=1)

        # Up to (and including) the skipped iteration the two runs see
        # the same batches, and the skipped update must be a no-op.
        poisoned.train(dataset, NAN_AT + 1,
                       runtime=RunConfig(policy="skip"))
        clean.train(dataset, NAN_AT,
                    runtime=RunConfig(policy="skip"))
        for a, b in zip(poisoned.generator.parameters(),
                        clean.generator.parameters()):
            assert np.array_equal(a.data, b.data)


class TestRollbackPolicy:
    def test_rollback_restores_pre_nan_weights(self, litho32, kernels32,
                                               dataset, tmp_path):
        """With checkpoint_every=1 the rollback target is the state
        saved at the end of the iteration before the NaN."""
        ckpt_dir = str(tmp_path / "ckpts")
        pre = _pretrainer(litho32, kernels32)
        _poison(pre, {ITERATIONS - 1})  # diverge on the final iteration
        base_lr = pre.optimizer.lr
        history = pre.train(
            dataset, ITERATIONS,
            runtime=RunConfig(checkpoint_dir=ckpt_dir, checkpoint_every=1,
                              keep_last=ITERATIONS + 1, policy="rollback",
                              lr_backoff=0.5))
        assert len(history.litho_error) == ITERATIONS

        state = Checkpointer(ckpt_dir).load(
            Checkpointer(ckpt_dir).path_for(ITERATIONS - 1))
        restored = state.modules["generator"]
        live = dict(pre.generator.named_parameters())
        for name, saved in restored.items():
            if name in live:
                assert np.array_equal(live[name].data, saved)
        assert pre.optimizer.lr == pytest.approx(base_lr * 0.5)

    @pytest.mark.parametrize("k", [0, 1, ITERATIONS - 1])
    def test_nan_at_any_iteration_never_crashes(self, litho32, kernels32,
                                                dataset, k):
        pre = _pretrainer(litho32, kernels32)
        _poison(pre, {k})
        history = pre.train(dataset, ITERATIONS,
                            runtime=RunConfig(policy="rollback"))
        assert len(history.litho_error) == ITERATIONS
        assert np.isfinite(history.litho_error[-1]) or k == ITERATIONS - 1

    def test_recovery_budget_escalates(self, litho32, kernels32, dataset):
        pre = _pretrainer(litho32, kernels32)
        _poison(pre, set(range(ITERATIONS)))  # every iteration diverges
        with pytest.raises(DivergenceError, match="recovery attempts"):
            pre.train(dataset, ITERATIONS,
                      runtime=RunConfig(policy="rollback",
                                        max_recoveries=2))


class TestGanFaultInjection:
    def _trainer(self):
        config = _config()
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(1))
        discriminator = PairDiscriminator(
            config.grid, config.discriminator_channels,
            rng=np.random.default_rng(2))
        return GanOpcTrainer(generator, discriminator, config)

    def _poison_mse(self, monkeypatch, at_iterations):
        original = nn.mse_loss
        calls = {"n": 0}

        def poisoned(prediction, target, reduction="mean"):
            loss = original(prediction, target, reduction=reduction)
            bad = calls["n"] in at_iterations
            calls["n"] += 1
            if bad:
                return loss * float("nan")
            return loss

        monkeypatch.setattr(nn, "mse_loss", poisoned)

    def test_generator_nan_skips_discriminator(self, dataset, monkeypatch):
        self._poison_mse(monkeypatch, {NAN_AT})
        history = self._trainer().train(dataset, ITERATIONS,
                                        runtime=RunConfig(policy="skip"))
        assert len(history.generator_loss) == ITERATIONS
        assert np.isnan(history.generator_loss[NAN_AT])
        # The fakes are untrustworthy after a guarded generator step, so
        # the discriminator update is skipped for the iteration.
        assert np.isnan(history.discriminator_loss[NAN_AT])
        assert np.isfinite(history.discriminator_loss[NAN_AT + 1])

    def test_raise_policy_aborts(self, dataset, monkeypatch):
        self._poison_mse(monkeypatch, {NAN_AT})
        with pytest.raises(DivergenceError, match="generator_loss"):
            self._trainer().train(dataset, ITERATIONS,
                                  runtime=RunConfig(policy="raise"))


class TestHarnessUnit:
    """Direct harness coverage with a toy module (no litho in the loop)."""

    def _harness(self, config, seed=0):
        module = nn.Linear(3, 2, rng=np.random.default_rng(seed))
        optimizer = nn.Adam(module.parameters(), lr=0.1)
        harness = TrainingHarness("test", {"net": module},
                                  {"net": optimizer}, config)
        harness.begin(None, {}, 10)
        return module, optimizer, harness

    def _grads(self, module, value=1.0):
        def backward():
            for param in module.parameters():
                param.grad = np.full(param.data.shape, value)
        return backward

    def test_ok_update_steps_optimizer(self):
        module, _, harness = self._harness(RunConfig())
        before = [p.data.copy() for p in module.parameters()]
        harness.begin_iteration(0)
        assert harness.apply_update({"loss": 1.0}, self._grads(module),
                                    harness.optimizers["net"]) == "ok"
        assert any(not np.array_equal(a, p.data)
                   for a, p in zip(before, module.parameters()))

    def test_rollback_without_checkpointer_restores_run_start(self):
        module, optimizer, harness = self._harness(
            RunConfig(policy="rollback", lr_backoff=0.25))
        start = [p.data.copy() for p in module.parameters()]
        harness.begin_iteration(0)
        harness.apply_update({"loss": 1.0}, self._grads(module), optimizer)
        harness.begin_iteration(1)
        action = harness.apply_update({"loss": float("nan")},
                                      self._grads(module), optimizer)
        assert action == "rollback"
        assert all(np.array_equal(a, p.data)
                   for a, p in zip(start, module.parameters()))
        assert optimizer.lr == pytest.approx(0.1 * 0.25)

    def test_nonfinite_gradient_is_guarded(self):
        module, optimizer, harness = self._harness(RunConfig(policy="skip"))
        before = [p.data.copy() for p in module.parameters()]
        harness.begin_iteration(0)
        action = harness.apply_update({"loss": 1.0},
                                      self._grads(module, np.inf),
                                      optimizer)
        assert action == "skip"
        assert all(np.array_equal(a, p.data)
                   for a, p in zip(before, module.parameters()))

    def test_grad_clipping_bounds_update(self):
        module, optimizer, harness = self._harness(
            RunConfig(max_grad_norm=1.0))
        harness.begin_iteration(0)
        harness.apply_update({"loss": 1.0}, self._grads(module, 100.0),
                             optimizer, tag="net")
        # The recorded norm is pre-clip; the applied gradients are not.
        assert harness._grad_norms["net"] > 1.0
        post = nn.global_grad_norm(module.parameters())
        assert post <= 1.0 + 1e-9


class TestRunConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"policy": "explode"},
        {"checkpoint_every": -1},
        {"keep_last": 0},
        {"lr_backoff": 0.0},
        {"lr_backoff": 1.5},
        {"max_recoveries": -1},
        {"max_grad_norm": 0.0},
        {"resume": True},  # without checkpoint_dir
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            RunConfig(**kwargs)


def test_nonfinite_entries_filters():
    values = {"a": 1.0, "b": float("nan"), "c": float("-inf"), "d": 0.0}
    assert set(nonfinite_entries(values)) == {"b", "c"}
