"""Cross-precision checkpoint round-trips (backend/f32 PR, satellite 1).

A checkpoint written by an f32 run must resume as an f32 run — even
when loaded into a freshly built module, which is born f64.
``Module.load_state_dict`` adopts the *live* parameter dtype, so
without the dtype-faithful restore in ``runtime.checkpoint`` the
resumed run would silently continue in double precision, diverging
from the run that wrote the checkpoint.  Optimizer moments must make
the same trip: ``nn.to_dtype(module, dtype, optimizers=...)`` casts
SGD velocity and Adam moment buffers alongside the parameters.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import MaskGenerator
from repro.runtime import Checkpointer, capture_state, restore_state

GRID = 32


def _module(precision, seed=1):
    module = MaskGenerator((4, 8), rng=np.random.default_rng(seed))
    if precision == "f32":
        nn.to_dtype(module, np.float32)
    return module


def _train_steps(module, optimizer, steps=2, seed=3):
    dtype = nn.compute_dtype(module)
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        optimizer.zero_grad()
        batch = nn.Tensor(rng.random((2, 1, GRID, GRID)).astype(dtype))
        out = module(batch)
        loss = nn.mse_loss(out, batch)
        loss.backward()
        optimizer.step()


def _param_dtypes(module):
    return {name: param.data.dtype
            for name, param in module.named_parameters()}


@pytest.mark.parametrize("precision", ["f32", "f64"])
class TestDtypeFaithfulRestore:
    def test_restore_into_fresh_module_keeps_stored_dtype(self, precision,
                                                          tmp_path):
        expected = np.dtype(np.float32 if precision == "f32"
                            else np.float64)
        source = _module(precision)
        optimizer = nn.Adam(source.parameters(), lr=1e-3)
        _train_steps(source, optimizer)
        state = capture_state(1, {"generator": source},
                              {"generator": optimizer})
        saved = Checkpointer(str(tmp_path)).save(state)

        # A freshly built module is always f64 — the restore must cast
        # it to the checkpoint's dtype before loading.
        fresh = _module("f64", seed=99)
        fresh_optimizer = nn.Adam(fresh.parameters(), lr=1e-3)
        loaded = Checkpointer(str(tmp_path)).load(saved)
        restore_state(loaded, {"generator": fresh},
                      {"generator": fresh_optimizer})

        assert set(_param_dtypes(fresh).values()) == {expected}
        for moment in fresh_optimizer._m + fresh_optimizer._v:
            assert moment is None or moment.dtype == expected

    def test_resumed_run_matches_uninterrupted(self, precision, tmp_path):
        """checkpoint-at-k + resume == uninterrupted run (bit-exact)."""
        # Uninterrupted: 4 steps.
        straight = _module(precision)
        straight_opt = nn.Adam(straight.parameters(), lr=1e-3)
        _train_steps(straight, straight_opt, steps=2, seed=3)
        _train_steps(straight, straight_opt, steps=2, seed=4)

        # Interrupted: 2 steps, checkpoint, restore into a fresh f64
        # module, 2 more steps.
        source = _module(precision)
        source_opt = nn.Adam(source.parameters(), lr=1e-3)
        _train_steps(source, source_opt, steps=2, seed=3)
        state = capture_state(2, {"generator": source},
                              {"generator": source_opt})
        saved = Checkpointer(str(tmp_path)).save(state)

        resumed = _module("f64", seed=99)
        resumed_opt = nn.Adam(resumed.parameters(), lr=1e-3)
        restore_state(Checkpointer(str(tmp_path)).load(saved),
                      {"generator": resumed}, {"generator": resumed_opt})
        _train_steps(resumed, resumed_opt, steps=2, seed=4)

        for (name, a), (_, b) in zip(straight.named_parameters(),
                                     resumed.named_parameters()):
            assert a.data.dtype == b.data.dtype, name
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)


class TestToDtypeOptimizerState:
    def test_adam_moments_cast(self):
        module = _module("f64")
        optimizer = nn.Adam(module.parameters(), lr=1e-3)
        _train_steps(module, optimizer)
        assert all(m.dtype == np.float64 for m in optimizer._m)
        nn.to_dtype(module, np.float32, optimizers=[optimizer])
        assert all(m.dtype == np.float32 for m in optimizer._m)
        assert all(v.dtype == np.float32 for v in optimizer._v)

    def test_sgd_velocity_cast(self):
        module = _module("f64")
        optimizer = nn.SGD(module.parameters(), lr=1e-2, momentum=0.9)
        _train_steps(module, optimizer)
        assert all(v.dtype == np.float64 for v in optimizer._velocity)
        nn.to_dtype(module, np.float32, optimizers=[optimizer])
        assert all(v.dtype == np.float32 for v in optimizer._velocity)

    def test_cast_after_step_matches_fresh_f32(self):
        """Module cast mid-run with optimizer state == updates computed
        in f32 from there on (no silent promotion through f64 moments)."""
        module = _module("f64")
        optimizer = nn.Adam(module.parameters(), lr=1e-3)
        _train_steps(module, optimizer)
        nn.to_dtype(module, np.float32, optimizers=[optimizer])
        _train_steps(module, optimizer, steps=1, seed=5)
        assert set(_param_dtypes(module).values()) == {
            np.dtype(np.float32)}

    def test_base_optimizer_to_dtype_validates(self):
        module = _module("f64")
        optimizer = nn.Adam(module.parameters(), lr=1e-3)
        with pytest.raises(TypeError):
            optimizer.to_dtype("not-a-dtype")
