"""Schema round-trips for the ISSUE 9 run-ledger record types.

``run_manifest`` / ``quality_sample`` / ``clip_result`` / ``anomaly``
are additive extensions of the telemetry schema: the new events must
validate and round-trip through :class:`RunLogger`, and every record
shape the substrate emitted *before* this schema revision must still
validate unchanged (consumers fold old and new streams alike).
"""

import json

import numpy as np
import pytest

from repro.runtime import (RunLogger, TelemetrySchemaError, validate_record)
from repro.runtime.telemetry import SCHEMA_VERSION


def _read_records(path):
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def _base(event, **fields):
    record = {"schema": SCHEMA_VERSION, "event": event, "phase": "test",
              "ts": 1.0}
    record.update(fields)
    return record


class TestRunManifestRecord:
    def _record(self, **extra):
        return _base("run_manifest", run_id="20260808T000000-ilt-cafe0001",
                     command="ilt", **extra)

    def test_minimal_and_full_records_pass(self):
        validate_record(self._record())
        validate_record(self._record(
            argv=["clip.glp", "--iterations", "5"], git_rev="abc1234",
            config_hash="cafe", seed=7, precision="f64", workers=2,
            grid=64, conditions="nominal",
            packages={"numpy": "1.26.0"}, runs_dir="/tmp/.repro_runs"))

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("run_id"),
        lambda r: r.pop("command"),
        lambda r: r.update(argv="not-a-list"),
        lambda r: r.update(argv=[1, 2]),
        lambda r: r.update(packages={"numpy": 1.26}),
        lambda r: r.update(seed=1.5),
        lambda r: r.update(stray=1),
    ])
    def test_invalid_record_rejected(self, mutate):
        record = self._record()
        mutate(record)
        with pytest.raises(TelemetrySchemaError):
            validate_record(record)


class TestQualitySampleRecord:
    def _record(self, **extra):
        record = _base("quality_sample", iteration=3, objective=1.25)
        record.update(extra)
        return record

    def test_minimal_and_full_records_pass(self):
        validate_record(self._record())
        validate_record(self._record(l2=2.5, clip="iccad13-01",
                                     method="ILT", stage="refinement",
                                     seconds=0.01))

    def test_nonfinite_objective_string_encoding_passes(self):
        validate_record(self._record(objective="nan", l2="inf"))

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("iteration"),
        lambda r: r.pop("objective"),
        lambda r: r.update(iteration=1.5),
        lambda r: r.update(objective="huge"),
        lambda r: r.update(clip=13),
        lambda r: r.update(stray=1),
    ])
    def test_invalid_record_rejected(self, mutate):
        record = self._record()
        mutate(record)
        with pytest.raises(TelemetrySchemaError):
            validate_record(record)

    def test_logger_helper_round_trips(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with RunLogger(path, "ilt") as logger:
            logger.quality_sample(np.int64(3), np.float64(1.25),
                                  l2=float("nan"), clip="iccad13-01",
                                  method="ILT", stage="refinement")
        (record,) = _read_records(path)
        validate_record(record)
        assert record["iteration"] == 3
        assert record["l2"] == "nan"


class TestClipResultRecord:
    def _record(self, **extra):
        return _base("clip_result", clip="iccad13-01", method="PGAN-OPC",
                     metrics={"l2_nm2": 100.0, "epe_violations": 1.0},
                     **extra)

    def test_minimal_and_full_records_pass(self):
        validate_record(self._record())
        validate_record(self._record(
            runtime_seconds=1.5,
            stage_seconds={"generation": 0.5, "refinement": 1.0},
            epe_hotspots=[{"x": 10.0, "y": 20.0, "epe": 12.5},
                          {"x": 1.0, "y": 2.0, "epe": "inf"}]))

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("clip"),
        lambda r: r.pop("method"),
        lambda r: r.pop("metrics"),
        lambda r: r.update(metrics={"l2_nm2": "big"}),
        lambda r: r.update(epe_hotspots=[{"x": 1.0, "y": 2.0}]),
        lambda r: r.update(epe_hotspots=[{"x": 1.0, "y": 2.0,
                                          "epe": 3.0, "z": 4.0}]),
        lambda r: r.update(stray=1),
    ])
    def test_invalid_record_rejected(self, mutate):
        record = self._record()
        mutate(record)
        with pytest.raises(TelemetrySchemaError):
            validate_record(record)

    def test_logger_helper_round_trips(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with RunLogger(path, "table2") as logger:
            logger.clip_result(
                "iccad13-01", "ILT",
                {"l2_nm2": np.float64(100.0),
                 "pvband_nm2": float("inf")},
                runtime_seconds=1.5,
                epe_hotspots=[{"x": np.float64(10.0), "y": 20.0,
                               "epe": 12.5}])
        (record,) = _read_records(path)
        validate_record(record)
        assert record["metrics"]["pvband_nm2"] == "inf"
        assert record["epe_hotspots"][0]["x"] == 10.0
        assert "stage_seconds" not in record  # empty optional dropped


class TestAnomalyRecord:
    def _record(self, **extra):
        record = _base("anomaly", kind="divergence")
        record.update(extra)
        return record

    def test_known_anomaly_shapes_pass(self):
        validate_record(self._record(iteration=7, action="rollback",
                                     values={"loss": 12.0},
                                     recoveries=2,
                                     learning_rates={"g": 1e-4}))
        validate_record(self._record(kind="worker_stall", pid=1234,
                                     task_seq=9, gap_seconds=5.5))
        validate_record(self._record(kind="straggler", pid=1234,
                                     seconds=9.0, median_seconds=3.0))

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("kind"),
        lambda r: r.update(kind=7),
        lambda r: r.update(pid=1.5),
        lambda r: r.update(values={"loss": "big"}),
        lambda r: r.update(stray=1),
    ])
    def test_invalid_record_rejected(self, mutate):
        record = self._record()
        mutate(record)
        with pytest.raises(TelemetrySchemaError):
            validate_record(record)

    def test_logger_helper_round_trips(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with RunLogger(path, "flow") as logger:
            logger.anomaly("worker_stall", pid=np.int64(1234),
                           task_seq=9, gap_seconds=np.float64(5.5))
        (record,) = _read_records(path)
        validate_record(record)
        assert record["kind"] == "worker_stall"
        assert type(record["pid"]) is int


class TestBackwardCompatibility:
    """Records the substrate emitted before this schema revision must
    still validate — old telemetry files stay readable."""

    @pytest.mark.parametrize("record", [
        _base("iteration", iteration=0, losses={"total": 1.0},
              seconds=0.1),
        _base("iteration", iteration=3, losses={"total": 1.0},
              seconds=0.1, grad_norms={"g": 0.5}, action="checkpoint",
              litho={"forward_calls": 4.0}),
        _base("span_summary",
              spans={"litho.forward": {"count": 4, "seconds": 0.2}},
              wall_seconds=1.0, coverage=0.9, trace_file="t.json"),
        _base("worker_span_summary", pid=42,
              spans={"litho.forward": {"count": 4, "seconds": 0.2}},
              tasks=4, busy_seconds=0.3),
        _base("resource_sample", pid=42, rss_bytes=1048576.0,
              cpu_seconds=0.5, num_threads=2),
    ])
    def test_pre_ledger_records_still_validate(self, record):
        validate_record(record)

    def test_pre_ledger_jsonl_stream_still_validates(self, tmp_path):
        # The exact line shape older RunLogger versions wrote.
        path = tmp_path / "old.jsonl"
        lines = [
            json.dumps(_base("iteration", iteration=i,
                             losses={"total": 1.0 / (i + 1)},
                             seconds=0.1))
            for i in range(3)
        ]
        path.write_text("\n".join(lines) + "\n")
        for line in path.read_text().splitlines():
            validate_record(json.loads(line))
