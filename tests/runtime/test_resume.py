"""Resume-determinism regression suite (ISSUE 2, satellite 2).

Training ``2N`` iterations straight must be bit-identical to training
``N`` iterations, checkpointing, constructing *fresh* (differently
initialized) networks and optimizers, resuming from disk and training
the remaining ``N`` — for both the Algorithm 1 adversarial loop and the
Algorithm 2 ILT-guided pretrainer.  This is the contract that makes a
killed long run recoverable without changing its result.
"""

import numpy as np
import pytest

from repro.core import (GanOpcConfig, GanOpcTrainer, ILTGuidedPretrainer,
                        MaskGenerator, PairDiscriminator)
from repro.ilt import ILTConfig
from repro.layoutgen import SyntheticDataset
from repro.runtime import RunConfig

N = 3


@pytest.fixture(scope="module")
def dataset(litho32, kernels32):
    return SyntheticDataset(litho32, size=4, seed=5, kernels=kernels32,
                            ilt_config=ILTConfig(max_iterations=20))


def _config():
    return GanOpcConfig(grid=32, generator_channels=(4, 8),
                        discriminator_channels=(4, 8), batch_size=2,
                        seed=7)


def _gan_trainer(init_seed):
    config = _config()
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(init_seed))
    discriminator = PairDiscriminator(config.grid,
                                      config.discriminator_channels,
                                      rng=np.random.default_rng(init_seed
                                                                + 100))
    return GanOpcTrainer(generator, discriminator, config)


def _pretrainer(litho32, kernels32, init_seed):
    config = _config()
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(init_seed))
    return ILTGuidedPretrainer(generator, litho32, config,
                               kernels=kernels32)


class TestGanResumeDeterminism:
    def test_split_run_matches_straight_run(self, dataset, tmp_path):
        straight = _gan_trainer(1).train(dataset, 2 * N)

        ckpt_dir = str(tmp_path / "gan")
        _gan_trainer(1).train(dataset, N,
                              runtime=RunConfig(checkpoint_dir=ckpt_dir))
        # Different init seed: everything observable must come from the
        # checkpoint, not from construction.
        resumed_trainer = _gan_trainer(2)
        resumed = resumed_trainer.train(
            dataset, 2 * N,
            runtime=RunConfig(checkpoint_dir=ckpt_dir, resume=True))

        assert resumed.generator_loss == straight.generator_loss
        assert resumed.discriminator_loss == straight.discriminator_loss
        assert resumed.l2_to_reference == straight.l2_to_reference

    def test_resumed_weights_match_straight_run(self, dataset, tmp_path):
        reference_trainer = _gan_trainer(1)
        reference_trainer.train(dataset, 2 * N)

        ckpt_dir = str(tmp_path / "gan-weights")
        _gan_trainer(1).train(dataset, N,
                              runtime=RunConfig(checkpoint_dir=ckpt_dir))
        resumed_trainer = _gan_trainer(2)
        resumed_trainer.train(
            dataset, 2 * N,
            runtime=RunConfig(checkpoint_dir=ckpt_dir, resume=True))

        for a, b in zip(reference_trainer.generator.parameters(),
                        resumed_trainer.generator.parameters()):
            assert np.array_equal(a.data, b.data)
        for a, b in zip(reference_trainer.discriminator.parameters(),
                        resumed_trainer.discriminator.parameters()):
            assert np.array_equal(a.data, b.data)


class TestPretrainResumeDeterminism:
    def test_split_run_matches_straight_run(self, litho32, kernels32,
                                            dataset, tmp_path):
        straight = _pretrainer(litho32, kernels32, 1).train(dataset, 2 * N)

        ckpt_dir = str(tmp_path / "pretrain")
        _pretrainer(litho32, kernels32, 1).train(
            dataset, N, runtime=RunConfig(checkpoint_dir=ckpt_dir))
        resumed = _pretrainer(litho32, kernels32, 2).train(
            dataset, 2 * N,
            runtime=RunConfig(checkpoint_dir=ckpt_dir, resume=True))

        assert resumed.litho_error == straight.litho_error
        assert len(resumed.litho_error) == 2 * N

    def test_kill_mid_run_then_resume(self, litho32, kernels32, dataset,
                                      tmp_path):
        """Simulated crash at iteration N: with a per-iteration
        checkpoint cadence, resuming finishes the run bit-exactly."""
        straight = _pretrainer(litho32, kernels32, 1).train(dataset, 2 * N)

        ckpt_dir = str(tmp_path / "killed")
        victim = _pretrainer(litho32, kernels32, 1)
        original_step = victim.step
        calls = {"n": 0}

        def dying_step(targets, harness=None):
            if calls["n"] == N:
                raise RuntimeError("simulated kill -9")
            calls["n"] += 1
            return original_step(targets, harness=harness)

        victim.step = dying_step
        with pytest.raises(RuntimeError, match="simulated kill"):
            victim.train(dataset, 2 * N,
                         runtime=RunConfig(checkpoint_dir=ckpt_dir,
                                           checkpoint_every=1))

        resumed = _pretrainer(litho32, kernels32, 3).train(
            dataset, 2 * N,
            runtime=RunConfig(checkpoint_dir=ckpt_dir, resume=True))
        assert resumed.litho_error == straight.litho_error

    def test_resume_with_no_checkpoint_starts_fresh(self, litho32,
                                                    kernels32, dataset,
                                                    tmp_path):
        ckpt_dir = str(tmp_path / "empty")
        history = _pretrainer(litho32, kernels32, 1).train(
            dataset, N, runtime=RunConfig(checkpoint_dir=ckpt_dir,
                                          resume=True))
        assert len(history.litho_error) == N
