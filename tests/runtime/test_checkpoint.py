"""Checkpoint round-trip property suite (ISSUE 2, satellite 1).

For each network type used in the paper reproduction the full
save → load cycle must be *bit-exact*: identical forward outputs and
identical next-step Adam updates.  Corrupt or truncated checkpoint
files must raise a clear error instead of loading garbage weights.
"""

import os

import numpy as np
import pytest

from repro import nn
from repro.core import (MaskGenerator, PairDiscriminator,
                        UNetMaskGenerator)
from repro.runtime import (CheckpointError, Checkpointer, TrainingState,
                           capture_state, restore_state)

GRID = 32


def _build(kind, seed):
    rng = np.random.default_rng(seed)
    if kind == "generator":
        return MaskGenerator((4, 8), rng=rng)
    if kind == "discriminator":
        return PairDiscriminator(GRID, (4, 8), rng=rng)
    if kind == "unet":
        return UNetMaskGenerator((4, 8), rng=rng)
    raise AssertionError(kind)


def _forward(module, kind, seed=0):
    rng = np.random.default_rng(seed)
    if kind == "discriminator":
        target = nn.Tensor(rng.random((2, 1, GRID, GRID)))
        mask = nn.Tensor(rng.random((2, 1, GRID, GRID)))
        return module(target, mask).data
    return module(nn.Tensor(rng.random((2, 1, GRID, GRID)))).data


def _synthetic_grads(module, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=p.data.shape) for p in module.parameters()]


def _adam_update(module, optimizer, grads):
    for param, grad in zip(module.parameters(), grads):
        param.grad = grad.copy()
    optimizer.step()
    return [p.data.copy() for p in module.parameters()]


@pytest.mark.parametrize("kind", ["generator", "discriminator", "unet"])
class TestRoundTrip:
    def test_forward_bit_identical(self, kind, tmp_path):
        module = _build(kind, seed=1)
        optimizer = nn.Adam(module.parameters(), lr=1e-3)
        # Take a couple of steps so the Adam moments are nontrivial.
        for step_seed in (10, 11):
            _adam_update(module, optimizer, _synthetic_grads(module,
                                                             step_seed))
        reference = _forward(module, kind)

        ckpt = Checkpointer(str(tmp_path))
        ckpt.save(capture_state(2, {"net": module}, {"net": optimizer}))

        restored = _build(kind, seed=2)  # different init on purpose
        restored_opt = nn.Adam(restored.parameters(), lr=99.0)
        restore_state(ckpt.load(), {"net": restored},
                      {"net": restored_opt})
        assert np.array_equal(reference, _forward(restored, kind))

    def test_next_adam_update_identical(self, kind, tmp_path):
        module = _build(kind, seed=1)
        optimizer = nn.Adam(module.parameters(), lr=1e-3)
        _adam_update(module, optimizer, _synthetic_grads(module, 10))

        ckpt = Checkpointer(str(tmp_path))
        ckpt.save(capture_state(1, {"net": module}, {"net": optimizer}))
        restored = _build(kind, seed=2)
        restored_opt = nn.Adam(restored.parameters(), lr=1e-3)
        restore_state(ckpt.load(), {"net": restored},
                      {"net": restored_opt})

        # Identical gradients applied to both copies must produce
        # bit-identical parameters: the moment estimates, step counter
        # and bias correction all round-tripped exactly.
        grads = _synthetic_grads(module, 20)
        after_a = _adam_update(module, optimizer, grads)
        after_b = _adam_update(restored, restored_opt, grads)
        assert all(np.array_equal(a, b) for a, b in zip(after_a, after_b))


class TestRngAndHistory:
    def test_rng_state_round_trip(self, tmp_path):
        rng = np.random.default_rng(42)
        rng.random(17)  # advance past the seed state
        ckpt = Checkpointer(str(tmp_path))
        ckpt.save(capture_state(5, {}, {}, rng=rng,
                                history={"loss": [1.0, 0.5]}))
        expected = rng.random(8)

        fresh = np.random.default_rng(42)
        state = ckpt.load()
        restore_state(state, {}, {}, rng=fresh)
        assert np.array_equal(fresh.random(8), expected)
        assert state.history == {"loss": [1.0, 0.5]}
        assert state.iteration == 5

    def test_sgd_momentum_round_trip(self, tmp_path):
        module = _build("generator", seed=1)
        optimizer = nn.SGD(module.parameters(), lr=0.1, momentum=0.9)
        _adam_update(module, optimizer, _synthetic_grads(module, 10))
        ckpt = Checkpointer(str(tmp_path))
        ckpt.save(capture_state(1, {"net": module}, {"net": optimizer}))
        restored = _build("generator", seed=2)
        restored_opt = nn.SGD(restored.parameters(), lr=0.5)
        restore_state(ckpt.load(), {"net": restored},
                      {"net": restored_opt})
        grads = _synthetic_grads(module, 20)
        after_a = _adam_update(module, optimizer, grads)
        after_b = _adam_update(restored, restored_opt, grads)
        assert all(np.array_equal(a, b) for a, b in zip(after_a, after_b))


class TestRetentionAndAtomicity:
    def test_keep_last_prunes_old_checkpoints(self, tmp_path):
        ckpt = Checkpointer(str(tmp_path), keep_last=2)
        for iteration in range(5):
            ckpt.save(TrainingState(iteration=iteration))
        paths = ckpt.paths()
        assert len(paths) == 2
        assert ckpt.latest_path() == ckpt.path_for(4)
        assert ckpt.load().iteration == 4

    def test_no_tmp_files_left_behind(self, tmp_path):
        ckpt = Checkpointer(str(tmp_path))
        ckpt.save(TrainingState(iteration=0))
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(".tmp")]

    def test_missing_directory_means_no_checkpoints(self, tmp_path):
        ckpt = Checkpointer(str(tmp_path / "never-created"))
        assert ckpt.latest_path() is None
        with pytest.raises(CheckpointError, match="no checkpoints"):
            ckpt.load()


class TestCorruption:
    def _save_one(self, tmp_path):
        module = _build("generator", seed=1)
        optimizer = nn.Adam(module.parameters(), lr=1e-3)
        _adam_update(module, optimizer, _synthetic_grads(module, 10))
        ckpt = Checkpointer(str(tmp_path))
        path = ckpt.save(capture_state(1, {"net": module},
                                       {"net": optimizer}))
        return ckpt, path

    def test_garbage_file_raises_clear_error(self, tmp_path):
        ckpt, path = self._save_one(tmp_path)
        with open(path, "wb") as fh:
            fh.write(b"this is not a zip archive at all")
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            ckpt.load(path)

    def test_truncated_file_raises_clear_error(self, tmp_path):
        ckpt, path = self._save_one(tmp_path)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:len(blob) // 3])
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            ckpt.load(path)

    def test_missing_metadata_raises(self, tmp_path):
        path = str(tmp_path / "ckpt-00000000.npz")
        np.savez(path, stray=np.zeros(3))
        with pytest.raises(CheckpointError, match="__meta__"):
            Checkpointer(str(tmp_path)).load(path)

    def test_missing_array_raises(self, tmp_path):
        ckpt, path = self._save_one(tmp_path)
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        victim = next(key for key in data if key.startswith("m::"))
        del data[victim]
        with open(path, "wb") as fh:
            np.savez(fh, **data)
        with pytest.raises(CheckpointError, match="missing array"):
            ckpt.load(path)

    def test_restore_unknown_module_name_raises(self, tmp_path):
        ckpt, _ = self._save_one(tmp_path)
        other = _build("generator", seed=3)
        with pytest.raises(CheckpointError, match="no state for module"):
            restore_state(ckpt.load(), {"something_else": other}, {})

    def test_restore_mismatched_architecture_names_parameters(
            self, tmp_path):
        ckpt, _ = self._save_one(tmp_path)
        wrong = MaskGenerator((4, 8, 16), rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            restore_state(ckpt.load(), {"net": wrong}, {})
