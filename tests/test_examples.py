"""Smoke tests: the shipped examples run end to end on tiny grids."""

import importlib.util
import os
import sys

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _load(name):
    path = os.path.join(EXAMPLES, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_process_window_study_smoke(capsys):
    study = _load("process_window_study")
    windows = study.main(grid=32, ilt_iterations=5, verbose=False)
    assert set(windows) == {"no-OPC (target as mask)", "SRAF-assisted",
                            "ILT-optimized"}
    for window in windows.values():
        assert window.l2_error.shape == (3, 5)  # defocus rows x dose cols
    assert capsys.readouterr().out == ""


def test_quickstart_smoke(tmp_path):
    quickstart = _load("quickstart")
    results = quickstart.main(grid=32, mb_iterations=2, ilt_iterations=5,
                              pretrain_iterations=2, refine_iterations=3,
                              dataset_size=2, out_dir=str(tmp_path))
    assert set(results) == {"no-OPC", "MB-OPC", "ILT", "GAN-OPC"}
    for evaluation in results.values():
        assert evaluation.l2_nm2 >= 0.0
    assert (tmp_path / "ganopc_wafer.pgm").exists()
