"""Cross-module integration tests: the whole flow at smoke scale.

Each test exercises a complete path through several subsystems — the
kind of wiring that unit tests cannot catch.
"""

import numpy as np

from repro.bench import ExperimentConfig, Pipeline, iccad13_suite, run_table2, train_generators
from repro.core import (GanOpcConfig, GanOpcFlow, ILTGuidedPretrainer,
                        MaskGenerator, PairDiscriminator, GanOpcTrainer)
from repro.geometry import binarize, rasterize
from repro.ilt import ILTConfig, ILTOptimizer
from repro.layoutgen import SyntheticDataset
from repro.litho import LithoSimulator
from repro.metrics import evaluate_mask, squared_l2


class TestEndToEndFlow:
    def test_pretrain_then_flow_beats_no_opc(self, litho32, kernels32):
        """Synthesize -> pretrain -> generate -> refine -> evaluate:
        the complete GAN-OPC pipeline must beat printing the raw
        target."""
        dataset = SyntheticDataset(litho32, size=8, seed=41,
                                   kernels=kernels32)
        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=4)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        ILTGuidedPretrainer(generator, litho32, config,
                            kernels=kernels32).train(
            dataset, iterations=40, rng=np.random.default_rng(1))

        flow = GanOpcFlow(generator, litho32,
                          ILTConfig(max_iterations=40, patience=4),
                          kernels=kernels32)
        simulator = LithoSimulator(litho32, kernels32)
        target = dataset.target(0)
        no_opc = squared_l2(simulator.wafer_image(target), target)
        result = flow.optimize(target)
        assert result.l2 < no_opc

    def test_full_training_then_alg1(self, litho32, kernels32):
        """Pre-training followed by adversarial training (the PGAN-OPC
        recipe) keeps improving the mapping loss."""
        dataset = SyntheticDataset(litho32, size=6, seed=42,
                                   kernels=kernels32,
                                   ilt_config=ILTConfig(max_iterations=25))
        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=3)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        pre_history = ILTGuidedPretrainer(
            generator, litho32, config, kernels=kernels32).train(
            dataset, iterations=20, rng=np.random.default_rng(1))
        discriminator = PairDiscriminator(32, config.discriminator_channels,
                                          rng=np.random.default_rng(2))
        gan_history = GanOpcTrainer(generator, discriminator, config).train(
            dataset, iterations=30, rng=np.random.default_rng(3))
        assert pre_history.litho_error[-1] <= pre_history.litho_error[0]
        assert (np.mean(gan_history.l2_to_reference[-10:])
                <= np.mean(gan_history.l2_to_reference[:10]) * 1.1)

    def test_harness_quick_pipeline_shape(self):
        """The benchmark harness end to end at smoke scale: runtime
        ratios must show the flows faster than scratch ILT even with
        untrained generators (early stopping does it)."""
        pipeline = Pipeline.build(ExperimentConfig.quick())
        generators = train_generators(pipeline)
        clips = iccad13_suite(pipeline.litho)[:2]
        result = run_table2(pipeline, generators, clips=clips)
        assert result.ratio("GAN-OPC")[2] < 1.0
        assert result.ratio("PGAN-OPC")[2] < 1.0


class TestMetricsOverRealMasks:
    def test_evaluate_ilt_mask_full_report(self, litho64, kernels64, sim64):
        """ILT output evaluated with every metric, against the vector
        layout (EPE needs geometry, not just rasters)."""
        suite = iccad13_suite(litho64)
        clip = suite[9]  # the paper's easiest case (10)
        target = binarize(rasterize(clip.layout, 64))
        result = ILTOptimizer(litho64, ILTConfig(max_iterations=80),
                              kernels=kernels64).optimize(target)
        evaluation = evaluate_mask(sim64, result.mask, target,
                                   layout=clip.layout, name=clip.name,
                                   runtime_seconds=result.runtime_seconds)
        no_opc = evaluate_mask(sim64, target, target, layout=clip.layout)
        assert evaluation.l2_nm2 < no_opc.l2_nm2
        assert evaluation.epe_violations <= no_opc.epe_violations
        assert evaluation.bridge_defects == 0

    def test_checkpoint_roundtrip_through_flow(self, litho32, kernels32,
                                               tmp_path):
        """Generator trained -> saved -> reloaded -> same flow output."""
        from repro import nn
        config = GanOpcConfig(grid=32, generator_channels=(4, 8),
                              discriminator_channels=(4, 8), batch_size=2)
        dataset = SyntheticDataset(litho32, size=4, seed=7,
                                   kernels=kernels32)
        generator = MaskGenerator(config.generator_channels,
                                  rng=np.random.default_rng(0))
        ILTGuidedPretrainer(generator, litho32, config,
                            kernels=kernels32).train(
            dataset, iterations=10, rng=np.random.default_rng(1))
        path = str(tmp_path / "gen.npz")
        nn.save_state(generator, path)

        clone = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(99))
        nn.load_state(clone, path)
        target = dataset.target(0)
        np.testing.assert_allclose(generator.generate(target),
                                   clone.generate(target))
