"""Parity suite for the unified litho engine.

The batched :class:`~repro.litho.engine.LithoEngine` replaced four
hand-rolled copies of the Hopkins forward/adjoint FFT math.  These
tests pin its semantics against (a) a straight re-implementation of the
pre-refactor single-image path (plain ``fft2``, per-kernel inverse
transforms, adjoint accumulated in the spatial domain) to 1e-10, and
(b) finite differences, over grids {16, 32} x doses {0.98, 1.0, 1.02}
x batch sizes {1, 3}.
"""

import numpy as np
import pytest

from repro.litho import LithoConfig, LithoEngine, build_kernels, real_spectrum
from repro.litho.resist import sigmoid_mask, _stable_sigmoid

GRIDS = (16, 32)
DOSES = (0.98, 1.0, 1.02)
BATCHES = (1, 3)


# ----------------------------------------------------------------------
# Reference: the pre-refactor single-image implementation, verbatim math.
# ----------------------------------------------------------------------
def reference_aerial(mask, kernels, dose=1.0):
    spectrum = np.fft.fft2(mask)
    fields = np.fft.ifft2(spectrum[None] * kernels.freq_kernels,
                          axes=(-2, -1))
    intensity = np.einsum("k,kxy->xy", kernels.weights,
                          np.abs(fields) ** 2)
    if dose != 1.0:
        intensity = intensity * dose
    return intensity


def reference_gradient_wrt_mask(mask_relaxed, target, kernels, threshold,
                                resist_steepness, dose=1.0):
    spectrum = np.fft.fft2(mask_relaxed)
    fields = np.fft.ifft2(spectrum[None] * kernels.freq_kernels,
                          axes=(-2, -1))
    intensity = np.einsum("k,kxy->xy", kernels.weights,
                          np.abs(fields) ** 2)
    if dose != 1.0:
        intensity = intensity * dose
    wafer = _stable_sigmoid(resist_steepness * (intensity - threshold))
    diff = wafer - target
    error = float(np.sum(diff * diff))

    grad_intensity = 2.0 * resist_steepness * diff * wafer * (1.0 - wafer)
    if dose != 1.0:
        grad_intensity = grad_intensity * dose
    flipped = np.roll(kernels.freq_kernels[:, ::-1, ::-1], 1, axis=(-2, -1))
    weighted = grad_intensity[None] * np.conj(fields)
    grad = np.fft.ifft2(np.fft.fft2(weighted, axes=(-2, -1)) * flipped,
                        axes=(-2, -1))
    grad = 2.0 * np.einsum("k,kxy->xy", kernels.weights, grad.real)
    return error, grad


def reference_gradient(params, target, kernels, threshold, resist_steepness,
                       mask_steepness, dose=1.0):
    relaxed = sigmoid_mask(params, mask_steepness)
    error, grad_mb = reference_gradient_wrt_mask(
        relaxed, target, kernels, threshold, resist_steepness, dose=dose)
    return error, mask_steepness * relaxed * (1.0 - relaxed) * grad_mb


# ----------------------------------------------------------------------
def _engine(grid):
    return LithoEngine.for_kernels(build_kernels(LithoConfig.small(grid)))


def _mask_batch(grid, batch, seed=0):
    rng = np.random.default_rng(seed + grid + 7 * batch)
    masks = rng.random((batch, grid, grid))
    # A printable feature so wafer images are non-degenerate.
    masks[:, grid // 4: 3 * grid // 4, grid // 4: 3 * grid // 4] += 0.5
    return np.clip(masks, 0.0, 1.0)


def _target_batch(grid, batch):
    targets = np.zeros((batch, grid, grid))
    for i in range(batch):
        lo = 2 + i
        targets[i, lo:grid - lo, grid // 4: 3 * grid // 4] = 1.0
    return targets


@pytest.mark.parametrize("grid", GRIDS)
@pytest.mark.parametrize("dose", DOSES)
@pytest.mark.parametrize("batch", BATCHES)
class TestForwardParity:
    def test_aerial_matches_reference(self, grid, dose, batch):
        engine = _engine(grid)
        masks = _mask_batch(grid, batch)
        batched = engine.aerial(masks, dose=dose)
        assert batched.shape == (batch, grid, grid)
        for i in range(batch):
            expected = reference_aerial(masks[i], engine.kernels, dose=dose)
            np.testing.assert_allclose(batched[i], expected,
                                       rtol=1e-10, atol=1e-10)

    def test_single_equals_batched_slice(self, grid, dose, batch):
        engine = _engine(grid)
        masks = _mask_batch(grid, batch)
        batched = engine.aerial(masks, dose=dose)
        for i in range(batch):
            single = engine.aerial(masks[i], dose=dose)
            assert single.shape == (grid, grid)
            np.testing.assert_allclose(single, batched[i],
                                       rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("grid", GRIDS)
@pytest.mark.parametrize("dose", DOSES)
@pytest.mark.parametrize("batch", BATCHES)
class TestGradientParity:
    def test_wrt_mask_matches_reference(self, grid, dose, batch):
        engine = _engine(grid)
        cfg = engine.config
        masks = _mask_batch(grid, batch)
        targets = _target_batch(grid, batch)
        errors, grads = engine.error_and_gradient_wrt_mask(
            masks, targets, dose=dose)
        assert errors.shape == (batch,)
        assert grads.shape == (batch, grid, grid)
        for i in range(batch):
            ref_error, ref_grad = reference_gradient_wrt_mask(
                masks[i], targets[i], engine.kernels, cfg.threshold,
                cfg.resist_steepness, dose=dose)
            np.testing.assert_allclose(errors[i], ref_error, rtol=1e-10)
            np.testing.assert_allclose(grads[i], ref_grad,
                                       rtol=1e-10, atol=1e-10)

    def test_full_matches_reference(self, grid, dose, batch):
        engine = _engine(grid)
        cfg = engine.config
        rng = np.random.default_rng(grid + batch)
        params = rng.normal(scale=0.5, size=(batch, grid, grid))
        targets = _target_batch(grid, batch)
        errors, grads = engine.error_and_gradient(params, targets, dose=dose)
        for i in range(batch):
            ref_error, ref_grad = reference_gradient(
                params[i], targets[i], engine.kernels, cfg.threshold,
                cfg.resist_steepness, cfg.mask_steepness, dose=dose)
            np.testing.assert_allclose(errors[i], ref_error, rtol=1e-10)
            np.testing.assert_allclose(grads[i], ref_grad,
                                       rtol=1e-10, atol=1e-10)

    def test_matches_finite_differences(self, grid, dose, batch):
        engine = _engine(grid)
        cfg = engine.config
        rng = np.random.default_rng(11 + grid + batch)
        params = rng.normal(scale=0.5, size=(batch, grid, grid))
        targets = _target_batch(grid, batch)
        _, grads = engine.error_and_gradient(params, targets, dose=dose)

        eps = 1e-6
        positions = [(rng.integers(batch), rng.integers(grid),
                      rng.integers(grid)) for _ in range(4)]
        for n, i, j in positions:
            params[n, i, j] += eps
            upper, _ = engine.error_and_gradient(params[n], targets[n],
                                                 dose=dose)
            params[n, i, j] -= 2 * eps
            lower, _ = engine.error_and_gradient(params[n], targets[n],
                                                 dose=dose)
            params[n, i, j] += eps
            numeric = (upper - lower) / (2 * eps)
            assert abs(numeric - grads[n, i, j]) <= \
                1e-5 * max(abs(numeric), 1.0)


class TestSpectrum:
    @pytest.mark.parametrize("grid", [16, 32, 33])
    def test_real_spectrum_matches_fft2(self, grid):
        rng = np.random.default_rng(grid)
        masks = rng.random((2, grid, grid))
        np.testing.assert_allclose(real_spectrum(masks),
                                   np.fft.fft2(masks, axes=(-2, -1)),
                                   rtol=1e-12, atol=1e-12)

    def test_engine_spectrum_single(self):
        engine = _engine(16)
        mask = _mask_batch(16, 1)[0]
        np.testing.assert_allclose(engine.spectrum(mask), np.fft.fft2(mask),
                                   rtol=1e-12, atol=1e-12)


class TestEngineInterface:
    def test_for_kernels_is_memoized(self):
        kernels = build_kernels(LithoConfig.small(16))
        assert LithoEngine.for_kernels(kernels) is \
            LithoEngine.for_kernels(kernels)

    def test_rejects_mismatched_config(self):
        kernels = build_kernels(LithoConfig.small(16))
        with pytest.raises(ValueError):
            LithoEngine(LithoConfig.small(32), kernels=kernels)

    def test_rejects_non_square(self):
        engine = _engine(16)
        with pytest.raises(ValueError):
            engine.aerial(np.zeros((8, 16)))
        with pytest.raises(ValueError):
            engine.aerial(np.zeros((2, 8, 16)))

    def test_rejects_grid_mismatch(self):
        engine = _engine(16)
        with pytest.raises(ValueError):
            engine.aerial(np.zeros((32, 32)))

    def test_litho_error_scalar_vs_batch(self):
        engine = _engine(16)
        masks = _mask_batch(16, 3)
        targets = _target_batch(16, 3)
        batched = engine.litho_error(masks, targets, relaxed=True)
        assert batched.shape == (3,)
        single = engine.litho_error(masks[0], targets[0], relaxed=True)
        assert isinstance(single, float)
        np.testing.assert_allclose(single, batched[0])

    def test_binarized_score_tracks_discrete_l2(self):
        engine = _engine(16)
        targets = _target_batch(16, 2)
        params = 2.0 * targets - 1.0
        masks, l2 = engine.binarized_score(params, targets)
        assert masks.shape == (2, 16, 16)
        assert set(np.unique(masks)) <= {0.0, 1.0}
        np.testing.assert_allclose(
            l2, engine.discrete_l2(masks, targets))
