"""Condition stacks: ConditionSet semantics, C=1 bit-exactness, parity
with the pre-refactor per-corner simulator path, and process-window
gradient correctness."""

import os
import pickle

import numpy as np
import pytest

from repro.litho import (Condition, ConditionSet, LithoEngine,
                         build_kernels, clear_cache,
                         process_window_matrix)
from repro.litho.resist import hard_resist

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


@pytest.fixture(scope="module")
def bars32():
    mask = np.zeros((32, 32))
    mask[13:19, 4:28] = 1.0
    mask[6:10, 10:22] = 1.0
    return mask


@pytest.fixture(scope="module")
def window_engine(kernels32):
    conditions = ConditionSet.grid(defocuses=(0.0, 25.0),
                                   doses=(0.97, 1.03))
    return LithoEngine.for_conditions(kernels32, conditions)


class TestCondition:
    def test_defaults_are_nominal(self):
        c = Condition()
        assert (c.defocus, c.dose, c.weight) == (0.0, 1.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Condition(dose=0.0)
        with pytest.raises(ValueError):
            Condition(weight=-1.0)

    def test_describe(self):
        assert Condition(40.0, 0.98).describe() == "f+40nm d0.98"


class TestConditionSet:
    def test_needs_corners(self):
        with pytest.raises(ValueError):
            ConditionSet(())
        with pytest.raises(ValueError):
            ConditionSet((Condition(weight=0.0),))

    def test_dose_corners(self):
        cs = ConditionSet.dose_corners(0.02)
        np.testing.assert_allclose(cs.doses, [0.98, 1.0, 1.02])
        np.testing.assert_allclose(cs.defocuses, 0.0)

    def test_grid_is_defocus_major(self):
        cs = ConditionSet.grid(defocuses=(0.0, 40.0), doses=(0.98, 1.02))
        assert [(c.defocus, c.dose) for c in cs] == [
            (0.0, 0.98), (0.0, 1.02), (40.0, 0.98), (40.0, 1.02)]

    def test_grid_weights_length_checked(self):
        with pytest.raises(ValueError):
            ConditionSet.grid(defocuses=(0.0,), doses=(1.0, 1.02),
                              weights=(1.0,))

    def test_parse_presets(self):
        assert ConditionSet.parse("nominal").is_single_nominal()
        assert len(ConditionSet.parse("dose", dose_variation=0.05)) == 3
        window = ConditionSet.parse("window")
        assert len(window) == 6
        assert set(window.defocuses) == {0.0, 40.0}

    def test_parse_explicit(self):
        cs = ConditionSet.parse("0:1.0,40:0.98:2.5")
        assert cs.corners[1] == Condition(40.0, 0.98, 2.5)
        with pytest.raises(ValueError):
            ConditionSet.parse("40")
        with pytest.raises(ValueError):
            ConditionSet.parse("a:b")

    def test_normalized_weights(self):
        cs = ConditionSet.grid(defocuses=(0.0,), doses=(0.98, 1.02),
                               weights=(1.0, 3.0))
        np.testing.assert_allclose(cs.normalized_weights(), [0.25, 0.75])

    def test_defocus_groups_first_appearance_order(self):
        cs = ConditionSet.parse("40:1.0,0:0.98,40:1.02")
        groups = cs.defocus_groups()
        assert groups == ((40.0, (0, 2)), (0.0, (1,)))

    def test_hashable_and_picklable(self):
        cs = ConditionSet.parse("window")
        assert hash(cs) == hash(ConditionSet.parse("window"))
        assert pickle.loads(pickle.dumps(cs)) == cs

    def test_is_single_nominal_respects_defocus(self):
        assert ConditionSet.nominal(40.0).is_single_nominal(40.0)
        assert not ConditionSet.nominal(40.0).is_single_nominal(0.0)
        assert not ConditionSet.dose_corners().is_single_nominal()


class TestSingleNominalFastPath:
    def test_for_conditions_nominal_returns_nominal_engine(self, kernels32):
        nominal = LithoEngine.for_kernels(kernels32)
        engine = LithoEngine.for_conditions(kernels32,
                                            ConditionSet.nominal())
        assert engine is nominal

    def test_condition_engines_memoized(self, kernels32):
        cs = ConditionSet.dose_corners()
        a = LithoEngine.for_conditions(kernels32, cs)
        b = LithoEngine.for_conditions(kernels32, ConditionSet.dose_corners())
        assert a is b

    def test_c1_aerial_bit_exact(self, kernels32, bars32):
        engine = LithoEngine.for_conditions(kernels32,
                                            ConditionSet.nominal())
        nominal = engine.aerial(bars32)
        stacked = engine.condition_aerial(bars32)
        assert stacked.shape == (1,) + nominal.shape
        assert np.array_equal(stacked[0], nominal)

    def test_c1_gradient_bit_exact(self, kernels32, bars32):
        engine = LithoEngine.for_conditions(kernels32,
                                            ConditionSet.nominal())
        relaxed = 0.2 + 0.6 * bars32
        e0, g0 = engine.error_and_gradient_wrt_mask(relaxed, bars32)
        e1, g1 = engine.condition_error_and_gradient_wrt_mask(
            relaxed, bars32, objective="weighted")
        assert e0 == e1
        assert np.array_equal(g0, g1)


class TestWindowParity:
    """The engine's stacked corner evaluation must reproduce the
    pre-refactor one-simulator-per-corner results exactly."""

    def test_matches_committed_reference(self, litho32):
        with np.load(os.path.join(FIXTURES, "window_reference.npz")) as ref:
            window = process_window_matrix(
                ref["mask"], ref["target"], litho32,
                doses=tuple(ref["doses"]),
                defocuses=tuple(ref["defocuses"]))
            np.testing.assert_allclose(window.l2_error, ref["l2_error"],
                                       atol=1e-10)

    def test_matches_per_corner_nominal_engines(self, litho32, kernels32,
                                                bars32):
        """Independent re-derivation: one nominal engine per focus
        plane, dose as an intensity scale, hard resist, L2."""
        doses = (0.96, 1.0, 1.04)
        defocuses = (0.0, 25.0, 50.0)
        window = process_window_matrix(bars32, bars32, litho32,
                                       doses=doses, defocuses=defocuses)
        from dataclasses import replace
        for fi, defocus in enumerate(defocuses):
            cfg = replace(litho32, optics=replace(litho32.optics,
                                                  defocus=defocus))
            engine = LithoEngine.for_kernels(build_kernels(cfg))
            intensity = engine.aerial(bars32)
            for di, dose in enumerate(doses):
                wafer = hard_resist(intensity * dose, litho32.threshold)
                expected = float(np.sum((wafer - bars32) ** 2))
                assert abs(window.l2_error[fi, di] - expected) <= 1e-10

    def test_condition_litho_errors_batched(self, window_engine, bars32,
                                            rng):
        other = (rng.random((32, 32)) > 0.7).astype(float)
        batch = np.stack([bars32, other])
        errors = window_engine.condition_litho_errors(batch, batch)
        assert errors.shape == (2, 4)
        single = window_engine.condition_litho_errors(bars32, bars32)
        np.testing.assert_array_equal(errors[0], single)


class TestConditionGradients:
    @pytest.mark.parametrize("objective", ["weighted", "worst"])
    def test_matches_finite_differences(self, window_engine, bars32, rng,
                                        objective):
        relaxed = np.clip(
            0.5 * bars32 + 0.25 + 0.05 * rng.random((32, 32)), 0.0, 1.0)
        target = bars32

        def scalar():
            errors = window_engine.condition_litho_errors(
                relaxed, target, relaxed=True)
            if objective == "worst":
                return float(errors.max())
            lam = window_engine.conditions.normalized_weights()
            return float(errors @ lam)

        error, grad = window_engine.condition_error_and_gradient_wrt_mask(
            relaxed, target, objective=objective)
        assert abs(error - scalar()) <= 1e-9 * max(abs(error), 1.0)

        eps = 1e-6
        for i, j in [(15, 6), (15, 20), (7, 12), (10, 16), (3, 3), (25, 28)]:
            original = relaxed[i, j]
            relaxed[i, j] = original + eps
            upper = scalar()
            relaxed[i, j] = original - eps
            lower = scalar()
            relaxed[i, j] = original
            numeric = (upper - lower) / (2.0 * eps)
            assert abs(numeric - grad[i, j]) <= 1e-5 * max(abs(numeric), 1.0)

    def test_weighted_objective_honors_weights(self, kernels32, bars32):
        """An all-weight-on-one-corner stack must reduce to that
        corner's single-condition gradient."""
        lopsided = ConditionSet.grid(defocuses=(0.0, 25.0), doses=(1.0, 1.0),
                                     weights=(0.0, 0.0, 1.0, 0.0))
        engine = LithoEngine.for_conditions(kernels32, lopsided)
        relaxed = 0.2 + 0.6 * bars32
        error, grad = engine.condition_error_and_gradient_wrt_mask(
            relaxed, bars32, objective="weighted")

        from dataclasses import replace
        cfg = replace(kernels32.config,
                      optics=replace(kernels32.config.optics, defocus=25.0))
        single = LithoEngine.for_kernels(build_kernels(cfg))
        e_ref, g_ref = single.error_and_gradient_wrt_mask(relaxed, bars32)
        np.testing.assert_allclose(error, e_ref, rtol=1e-12)
        np.testing.assert_allclose(grad, g_ref, rtol=1e-9, atol=1e-12)

    def test_rejects_unknown_objective(self, window_engine, bars32):
        with pytest.raises(ValueError):
            window_engine.condition_error_and_gradient_wrt_mask(
                bars32, bars32, objective="nominal")

    def test_params_chain_rule(self, window_engine, bars32, rng):
        params = rng.standard_normal((32, 32)) * 0.5

        def scalar():
            from repro.litho.resist import sigmoid_mask
            relaxed = sigmoid_mask(params,
                                   window_engine.config.mask_steepness)
            errors = window_engine.condition_litho_errors(
                relaxed, bars32, relaxed=True)
            lam = window_engine.conditions.normalized_weights()
            return float(errors @ lam)

        _, grad = window_engine.condition_error_and_gradient(
            params, bars32, objective="weighted")
        eps = 1e-6
        for i, j in [(15, 6), (7, 12), (25, 28)]:
            original = params[i, j]
            params[i, j] = original + eps
            upper = scalar()
            params[i, j] = original - eps
            lower = scalar()
            params[i, j] = original
            numeric = (upper - lower) / (2.0 * eps)
            assert abs(numeric - grad[i, j]) <= 1e-5 * max(abs(numeric), 1.0)


class TestSubstrateIntegration:
    def test_f32_condition_stack(self, kernels32, bars32):
        engine = LithoEngine.for_conditions(
            kernels32, ConditionSet.parse("window"), precision="f32")
        aerial = engine.condition_aerial(bars32)
        assert aerial.dtype == np.float32
        assert aerial.shape == (6, 32, 32)
        errors, grad = engine.condition_error_and_gradient_wrt_mask(
            (0.2 + 0.6 * bars32).astype(np.float32), bars32)
        assert grad.dtype == np.float32
        assert np.isfinite(errors)

    def test_workspace_buffers_do_not_alias(self, window_engine, bars32):
        first = window_engine.condition_aerial(bars32)
        snapshot = first.copy()
        window_engine.condition_aerial(np.zeros((32, 32)))
        np.testing.assert_array_equal(first, snapshot)

    def test_stats_and_spans_account_corners(self, kernels32, bars32):
        from repro.obs import trace
        engine = LithoEngine.for_conditions(kernels32,
                                            ConditionSet.dose_corners())
        before = engine.stats.snapshot()
        tracer = trace.enable()
        try:
            engine.condition_aerial(bars32)
            engine.condition_error_and_gradient_wrt_mask(
                0.2 + 0.6 * bars32, bars32)
        finally:
            trace.disable()
        delta = engine.stats.delta(before)
        assert delta["forward_calls"] == 1
        assert delta["gradient_calls"] == 1
        spans = tracer.spans()
        names = [s.name for s in spans]
        assert "litho.forward" in names and "litho.adjoint" in names
        forward = next(s for s in spans if s.name == "litho.forward")
        assert forward.args["corners"] == 3

    def test_conditions_survive_worker_transport(self, litho32, bars32):
        """A ConditionSet travels through the WorkerPool task channel."""
        from repro.ilt import ILTConfig
        from repro.parallel import parallel_ilt
        conditions = ConditionSet.dose_corners(0.04)
        targets = np.stack([bars32, bars32])
        result = parallel_ilt(targets, litho32,
                              ILTConfig(max_iterations=3),
                              workers=2, conditions=conditions)
        serial = parallel_ilt(targets, litho32,
                              ILTConfig(max_iterations=3),
                              workers=1, conditions=conditions)
        for a, b in zip(result.results, serial.results):
            np.testing.assert_array_equal(a.mask, b.mask)


class TestDefocusedKernelCache:
    def test_defocused_builds_hit_disk_cache(self, tmp_path, monkeypatch,
                                              request):
        """A condition engine's per-focus kernel builds must be served
        from the disk cache on a cold (in-process-cache-cleared) start."""
        from repro.litho import LithoConfig, OpticsConfig
        import repro.litho.kernels as K

        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        # The in-process cache is keyed by config only (not cache dir);
        # drop our entries on exit so later cache tests start cold.
        request.addfinalizer(clear_cache)
        config = LithoConfig(grid=16, pixel_nm=8.0,
                             optics=OpticsConfig(source_points=5))
        conditions = ConditionSet.grid(defocuses=(0.0, 30.0), doses=(1.0,))
        clear_cache()
        kernels = build_kernels(config)
        engine = LithoEngine.for_conditions(kernels, conditions)
        mask = np.zeros((16, 16))
        mask[6:10, 4:12] = 1.0
        warm = engine.condition_aerial(mask)
        assert len(list(tmp_path.iterdir())) == 2  # one archive per focus

        # Cold start: drop in-process caches and make any real rebuild
        # explode — every kernel set must come from disk.
        clear_cache()

        def boom(*args, **kwargs):
            raise AssertionError("kernel decomposition ran despite cache")

        monkeypatch.setattr(K, "source_points", boom)
        kernels2 = build_kernels(config)
        engine2 = LithoEngine.for_conditions(kernels2, conditions)
        cold = engine2.condition_aerial(mask)
        np.testing.assert_array_equal(cold, warm)
