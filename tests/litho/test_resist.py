"""Unit tests for resist models (Eqs. 3, 12, 13)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.litho import (binarize_mask, hard_resist, sigmoid_mask,
                         sigmoid_resist)


class TestHardResist:
    def test_thresholding(self):
        intensity = np.array([0.1, 0.225, 0.3])
        np.testing.assert_allclose(hard_resist(intensity, 0.225), [0, 1, 1])

    def test_output_is_binary(self, rng):
        wafer = hard_resist(rng.random((16, 16)), 0.5)
        assert set(np.unique(wafer)) <= {0.0, 1.0}


class TestSigmoidResist:
    def test_midpoint_is_half(self):
        assert sigmoid_resist(np.array([0.225]), 0.225, 50.0)[0] == 0.5

    def test_steepness_sharpens(self):
        intensity = np.array([0.3])
        soft = sigmoid_resist(intensity, 0.225, 10.0)[0]
        sharp = sigmoid_resist(intensity, 0.225, 200.0)[0]
        assert sharp > soft

    def test_converges_to_hard_resist(self, rng):
        intensity = rng.random((8, 8))
        hard = hard_resist(intensity, 0.4)
        relaxed = sigmoid_resist(intensity, 0.4, 1e4)
        np.testing.assert_allclose(relaxed, hard, atol=1e-3)

    def test_no_overflow_for_extreme_inputs(self):
        out = sigmoid_resist(np.array([-1e6, 1e6]), 0.0, 100.0)
        assert np.all(np.isfinite(out))


class TestSigmoidMask:
    @given(hnp.arrays(np.float64, (4, 4),
                      elements=st.floats(-8, 8)))
    @settings(max_examples=25, deadline=None)
    def test_bounded_open_interval(self, params):
        # |steepness * param| stays below ~36.7, where float64 rounds
        # the sigmoid to exactly 1.0.
        relaxed = sigmoid_mask(params, 4.0)
        assert np.all(relaxed > 0.0)
        assert np.all(relaxed < 1.0)

    def test_saturates_to_unit_interval_for_extremes(self):
        relaxed = sigmoid_mask(np.array([-1e6, 1e6]), 4.0)
        np.testing.assert_allclose(relaxed, [0.0, 1.0])

    def test_monotone_in_params(self):
        params = np.linspace(-3, 3, 11)
        relaxed = sigmoid_mask(params, 4.0)
        assert np.all(np.diff(relaxed) > 0)

    def test_zero_maps_to_half(self):
        assert sigmoid_mask(np.array([0.0]), 4.0)[0] == 0.5


class TestBinarize:
    def test_default_level(self):
        np.testing.assert_allclose(binarize_mask(np.array([0.4, 0.5, 0.6])),
                                   [0, 1, 1])

    def test_custom_level(self):
        np.testing.assert_allclose(binarize_mask(np.array([0.4]), level=0.3),
                                   [1])
