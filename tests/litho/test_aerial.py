"""Unit tests for aerial image formation (Eq. 2)."""

import numpy as np
import pytest

from repro.litho import (aerial_image, aerial_image_and_fields, mask_fields,
                         mask_spectrum)


def _wire_mask(grid=32, width=10):
    mask = np.zeros((grid, grid))
    lo = grid // 2 - width // 2
    mask[lo:lo + width, 4:grid - 4] = 1.0
    return mask


class TestAerialImage:
    def test_clear_field_is_one(self, kernels32):
        intensity = aerial_image(np.ones((32, 32)), kernels32)
        np.testing.assert_allclose(intensity, 1.0, rtol=1e-9)

    def test_dark_field_is_zero(self, kernels32):
        intensity = aerial_image(np.zeros((32, 32)), kernels32)
        np.testing.assert_allclose(intensity, 0.0, atol=1e-12)

    def test_nonnegative(self, kernels32, rng):
        intensity = aerial_image(rng.random((32, 32)), kernels32)
        assert np.all(intensity >= 0)

    def test_dose_scales_linearly(self, kernels32):
        mask = _wire_mask()
        nominal = aerial_image(mask, kernels32)
        overdose = aerial_image(mask, kernels32, dose=1.02)
        np.testing.assert_allclose(overdose, nominal * 1.02, rtol=1e-12)

    def test_translation_equivariance(self, kernels32):
        """Shifting the mask circularly shifts the image (the imaging
        operator is a sum of convolutions)."""
        mask = _wire_mask()
        shifted = np.roll(mask, (3, 5), axis=(0, 1))
        np.testing.assert_allclose(
            aerial_image(shifted, kernels32),
            np.roll(aerial_image(mask, kernels32), (3, 5), axis=(0, 1)),
            atol=1e-9)

    def test_intensity_peaks_inside_pattern(self, kernels32):
        mask = _wire_mask()
        intensity = aerial_image(mask, kernels32)
        inside_mean = intensity[mask > 0.5].mean()
        outside_mean = intensity[mask < 0.5].mean()
        assert inside_mean > 3 * outside_mean

    def test_lowpass_blurs_edges(self, kernels32):
        """The aerial image of a sharp edge must be smooth: finite
        optical bandwidth cannot reproduce a step."""
        mask = _wire_mask()
        intensity = aerial_image(mask, kernels32)
        row = intensity[16]
        assert np.abs(np.diff(row)).max() < 0.5  # no step-like jump

    def test_rejects_non_square(self, kernels32):
        with pytest.raises(ValueError):
            aerial_image(np.zeros((16, 32)), kernels32)

    def test_rejects_grid_mismatch(self, kernels32):
        with pytest.raises(ValueError):
            aerial_image(np.zeros((64, 64)), kernels32)


class TestFields:
    def test_fields_shape(self, kernels32):
        fields = mask_fields(_wire_mask(), kernels32)
        assert fields.shape == (24, 32, 32)
        assert np.iscomplexobj(fields)

    def test_spectrum_reuse_consistent(self, kernels32):
        mask = _wire_mask()
        spectrum = mask_spectrum(mask)
        np.testing.assert_allclose(mask_fields(mask, kernels32),
                                   mask_fields(mask, kernels32, spectrum))

    def test_intensity_equals_weighted_field_power(self, kernels32):
        mask = _wire_mask()
        intensity, fields = aerial_image_and_fields(mask, kernels32)
        manual = np.einsum("k,kxy->xy", kernels32.weights,
                           np.abs(fields) ** 2)
        np.testing.assert_allclose(intensity, manual)
