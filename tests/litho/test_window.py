"""Unit tests for process-window analysis."""

import numpy as np
import pytest

from repro.litho import (LithoSimulator, depth_of_focus, exposure_latitude,
                         process_window_matrix)


@pytest.fixture(scope="module")
def wire_target():
    target = np.zeros((64, 64))
    target[27:37, 8:56] = 1.0
    return target


class TestProcessWindowMatrix:
    def test_matrix_shape_and_axes(self, litho64, wire_target):
        window = process_window_matrix(wire_target, wire_target, litho64,
                                       doses=(0.98, 1.0, 1.02),
                                       defocuses=(0.0, 40.0))
        assert window.l2_error.shape == (2, 3)
        assert window.doses == (0.98, 1.0, 1.02)
        assert window.defocuses == (0.0, 40.0)

    def test_empty_axes_rejected(self, litho64, wire_target):
        with pytest.raises(ValueError):
            process_window_matrix(wire_target, wire_target, litho64,
                                  doses=(), defocuses=(0.0,))

    def test_nominal_error_matches_simulator(self, litho64, kernels64,
                                             wire_target):
        window = process_window_matrix(wire_target, wire_target, litho64,
                                       doses=(1.0,), defocuses=(0.0,))
        simulator = LithoSimulator(litho64, kernels64)
        direct = simulator.litho_error(wire_target, wire_target)
        np.testing.assert_allclose(window.nominal_error(), direct)

    def test_defocus_degrades_image(self, litho64, wire_target):
        window = process_window_matrix(wire_target, wire_target, litho64,
                                       doses=(1.0,),
                                       defocuses=(0.0, 150.0))
        assert window.l2_error[1, 0] >= window.l2_error[0, 0]

    def test_within_tolerance(self, litho64, wire_target):
        window = process_window_matrix(wire_target, wire_target, litho64,
                                       doses=(1.0,), defocuses=(0.0,))
        tol = window.nominal_error()
        assert window.within_tolerance(tol)[0, 0]
        assert not window.within_tolerance(tol - 1)[0, 0]


class TestLatitudeAndFocus:
    def test_exposure_latitude_positive_for_tolerant_target(self, litho64,
                                                            wire_target):
        nominal = process_window_matrix(wire_target, wire_target, litho64,
                                        doses=(1.0,), defocuses=(0.0,)
                                        ).nominal_error()
        latitude = exposure_latitude(wire_target, wire_target, litho64,
                                     tolerance=nominal + 40,
                                     dose_span=0.1, steps=11)
        assert latitude > 0.0

    def test_exposure_latitude_zero_when_nominal_fails(self, litho64,
                                                       wire_target):
        latitude = exposure_latitude(wire_target, wire_target, litho64,
                                     tolerance=0.0, dose_span=0.1, steps=5)
        # The printed wire never matches the drawn target exactly.
        assert latitude == 0.0

    def test_latitude_monotone_in_tolerance(self, litho64, wire_target):
        nominal = process_window_matrix(wire_target, wire_target, litho64,
                                        doses=(1.0,), defocuses=(0.0,)
                                        ).nominal_error()
        tight = exposure_latitude(wire_target, wire_target, litho64,
                                  tolerance=nominal + 8, dose_span=0.1,
                                  steps=11)
        loose = exposure_latitude(wire_target, wire_target, litho64,
                                  tolerance=nominal + 200, dose_span=0.1,
                                  steps=11)
        assert loose >= tight

    def test_depth_of_focus_positive(self, litho64, wire_target):
        nominal = process_window_matrix(wire_target, wire_target, litho64,
                                        doses=(1.0,), defocuses=(0.0,)
                                        ).nominal_error()
        dof = depth_of_focus(wire_target, wire_target, litho64,
                             tolerance=nominal + 60, focus_span=80.0,
                             steps=5)
        assert dof >= 0.0
