"""Unit tests for TCC kernel construction."""

import numpy as np
import pytest

from repro.litho import (LithoConfig, OpticsConfig, build_kernels,
                         clear_cache, frequency_grid, pupil_function,
                         source_map, source_points)


class TestSourceAndPupil:
    def test_source_points_inside_annulus(self):
        optics = OpticsConfig(sigma_inner=0.4, sigma_outer=0.8)
        points, weights = source_points(optics)
        radii = np.hypot(points[:, 0], points[:, 1])
        assert np.all(radii <= 0.8 + 1e-9)
        assert np.all(radii >= 0.4 - 1e-9)
        np.testing.assert_allclose(weights.sum(), 1.0)

    def test_source_map_annular(self):
        optics = OpticsConfig(sigma_inner=0.5, sigma_outer=0.8)
        image = source_map(optics, resolution=65)
        center = image[32, 32]
        assert center == 0.0  # hole of the annulus

    def test_pupil_is_lowpass(self):
        optics = OpticsConfig()
        fx, fy = frequency_grid(64, 8.0)
        pupil = pupil_function(optics, fx, fy)
        f_max = optics.na / optics.wavelength
        outside = (fx ** 2 + fy ** 2) > (f_max * 1.01) ** 2
        assert np.all(pupil[outside] == 0)
        assert pupil[0, 0] == 1.0  # DC passes

    def test_pupil_defocus_adds_phase(self):
        optics = OpticsConfig(defocus=50.0)
        fx, fy = frequency_grid(64, 8.0)
        pupil = pupil_function(optics, fx, fy)
        inside = np.abs(pupil) > 0
        assert np.any(np.abs(np.angle(pupil[inside])) > 1e-6)

    def test_frequency_grid_units(self):
        fx, fy = frequency_grid(32, 8.0)
        assert fx.shape == (32, 32)
        assert abs(fx[1, 0] - 1.0 / (32 * 8.0)) < 1e-15


class TestBuildKernels:
    def test_kernel_count_and_shapes(self, kernels32, litho32):
        assert kernels32.num_kernels == 24
        assert kernels32.freq_kernels.shape == (24, 32, 32)
        assert kernels32.grid == 32

    def test_weights_positive_and_sorted(self, kernels32):
        assert np.all(kernels32.weights > 0)
        assert np.all(np.diff(kernels32.weights) <= 1e-12)

    def test_clear_field_normalized(self, kernels32):
        dc = np.abs(kernels32.freq_kernels[:, 0, 0]) ** 2
        np.testing.assert_allclose(float((kernels32.weights * dc).sum()), 1.0)

    def test_cache_returns_same_object(self, litho32):
        a = build_kernels(litho32)
        b = build_kernels(litho32)
        assert a is b

    def test_cache_can_be_bypassed_and_cleared(self, litho32):
        a = build_kernels(litho32)
        b = build_kernels(litho32, cache=False)
        assert a is not b
        np.testing.assert_allclose(a.freq_kernels, b.freq_kernels)

    def test_kernels_limited_by_source_rank(self):
        # A tiny source cannot produce 24 independent coherent systems
        # beyond its own point count.
        config = LithoConfig(
            grid=32, pixel_nm=8.0,
            optics=OpticsConfig(source_points=3, sigma_inner=0.0,
                                sigma_outer=0.8, num_kernels=24))
        kernels = build_kernels(config, cache=False)
        assert kernels.num_kernels <= 9

    def test_flipped_indexing(self, kernels32):
        flipped = kernels32.flipped()
        k = kernels32.freq_kernels
        n = k.shape[-1]
        # flipped[f] == k[-f] elementwise on the FFT grid.
        for idx in [(0, 0), (1, 5), (7, 31)]:
            i, j = idx
            np.testing.assert_allclose(flipped[:, i, j],
                                       k[:, (-i) % n, (-j) % n])

    def test_spatial_kernels_centered(self, kernels32):
        spatial = kernels32.spatial_kernels(shifted=True)
        dominant = np.abs(spatial[0])
        peak = np.unravel_index(dominant.argmax(), dominant.shape)
        center = (16, 16)
        assert abs(peak[0] - center[0]) <= 1 and abs(peak[1] - center[1]) <= 1


class TestFlippedMemoization:
    def test_flipped_is_cached_on_instance(self, litho32):
        kernels = build_kernels(litho32, cache=False)
        first = kernels.flipped()
        assert kernels.flipped() is first  # no roll+copy per call

    def test_cached_flipped_values_correct(self, litho32):
        kernels = build_kernels(litho32, cache=False)
        flipped = kernels.flipped()
        k = kernels.freq_kernels
        n = k.shape[-1]
        np.testing.assert_allclose(flipped[:, 3, 9], k[:, (-3) % n, (-9) % n])


class TestDiskCache:
    def test_build_populates_and_reuses_disk_cache(self, tmp_path,
                                                   monkeypatch):
        from repro.litho.kernels import config_hash
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        config = LithoConfig(grid=16, pixel_nm=8.0,
                             optics=OpticsConfig(source_points=5))
        built = build_kernels(config)
        archive = tmp_path / (config_hash(config) + ".npz")
        assert archive.exists()

        clear_cache()  # force the in-process cache to miss
        reloaded = build_kernels(config)
        assert reloaded is not built
        np.testing.assert_array_equal(reloaded.freq_kernels,
                                      built.freq_kernels)
        np.testing.assert_array_equal(reloaded.weights, built.weights)

    def test_hash_is_sensitive_to_config(self):
        from repro.litho.kernels import config_hash
        a = config_hash(LithoConfig.small(32))
        b = config_hash(LithoConfig.small(64))
        c = config_hash(LithoConfig.small(32))
        assert a == c and a != b

    def test_env_off_disables_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE", "off")
        config = LithoConfig(grid=16, pixel_nm=8.0,
                             optics=OpticsConfig(source_points=5))
        clear_cache()
        build_kernels(config)
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_archive_triggers_rebuild(self, tmp_path, monkeypatch):
        from repro.litho.kernels import config_hash
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        config = LithoConfig(grid=16, pixel_nm=8.0,
                             optics=OpticsConfig(source_points=5))
        archive = tmp_path / (config_hash(config) + ".npz")
        archive.write_bytes(b"not an npz archive")
        clear_cache()
        kernels = build_kernels(config)
        assert kernels.grid == 16  # rebuilt from scratch, no crash

    def test_explicit_disk_cache_false(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        config = LithoConfig(grid=16, pixel_nm=8.0,
                             optics=OpticsConfig(source_points=5))
        clear_cache()
        build_kernels(config, disk_cache=False)
        assert list(tmp_path.iterdir()) == []


class TestKernelDiskIO:
    def test_save_load_round_trip(self, litho32, kernels32, tmp_path):
        from repro.litho import load_kernels, save_kernels
        path = str(tmp_path / "kernels.npz")
        save_kernels(kernels32, path)
        loaded = load_kernels(path, litho32)
        np.testing.assert_allclose(loaded.freq_kernels,
                                   kernels32.freq_kernels)
        np.testing.assert_allclose(loaded.weights, kernels32.weights)

    def test_load_rejects_config_mismatch(self, litho32, kernels32,
                                          tmp_path):
        from repro.litho import load_kernels, save_kernels
        path = str(tmp_path / "kernels.npz")
        save_kernels(kernels32, path)
        with pytest.raises(ValueError, match="config"):
            load_kernels(path, LithoConfig.small(64))

    def test_extension_appended(self, litho32, kernels32, tmp_path):
        from repro.litho import load_kernels, save_kernels
        path = str(tmp_path / "kernels")
        save_kernels(kernels32, path + ".npz")
        loaded = load_kernels(path, litho32)
        assert loaded.num_kernels == kernels32.num_kernels
