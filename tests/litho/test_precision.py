"""Engine precision modes (f32/f64) and the workspace arena."""

import numpy as np
import pytest

from repro.litho import LithoEngine
from repro.litho.engine import (PRECISION_DTYPES, real_spectrum,
                                resolve_precision)
from repro.workspace import Workspace


@pytest.fixture(scope="module")
def masks():
    rng = np.random.default_rng(9)
    batch = rng.random((4, 32, 32))
    batch[:, 8:24, 8:24] += 0.5
    return np.clip(batch, 0.0, 1.0)


@pytest.fixture(scope="module")
def targets():
    rng = np.random.default_rng(13)
    return (rng.random((4, 32, 32)) > 0.7).astype(float)


class TestResolvePrecision:
    def test_default_is_f64(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRECISION", raising=False)
        assert resolve_precision(None) == "f64"

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRECISION", "f32")
        assert resolve_precision(None) == "f32"

    @pytest.mark.parametrize("alias,expected", [
        ("f32", "f32"), ("float32", "f32"), ("single", "f32"),
        ("f64", "f64"), ("float64", "f64"), ("double", "f64"),
        ("F32", "f32"),
    ])
    def test_aliases(self, alias, expected):
        assert resolve_precision(alias) == expected

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_precision("f16")

    def test_dtype_table(self):
        assert PRECISION_DTYPES["f64"] == (np.float64, np.complex128)
        assert PRECISION_DTYPES["f32"] == (np.float32, np.complex64)


class TestEnginePrecision:
    def test_for_kernels_memoizes_per_precision(self, kernels32):
        e64a = LithoEngine.for_kernels(kernels32, precision="f64")
        e64b = LithoEngine.for_kernels(kernels32, precision="f64")
        e32 = LithoEngine.for_kernels(kernels32, precision="f32")
        assert e64a is e64b
        assert e32 is not e64a
        assert e32.precision == "f32"
        assert e64a.precision == "f64"

    def test_f32_output_dtypes(self, kernels32, masks, targets):
        engine = LithoEngine.for_kernels(kernels32, precision="f32")
        aerial = engine.aerial(masks)
        assert aerial.dtype == np.float32
        errors, grads = engine.error_and_gradient_wrt_mask(masks, targets)
        assert grads.dtype == np.float32

    def test_f32_aerial_close_to_f64(self, kernels32, masks):
        e64 = LithoEngine.for_kernels(kernels32, precision="f64")
        e32 = LithoEngine.for_kernels(kernels32, precision="f32")
        a64 = e64.aerial(masks)
        a32 = e32.aerial(masks)
        np.testing.assert_allclose(a32, a64, atol=1e-4, rtol=1e-3)

    def test_f32_litho_error_within_documented_tolerance(self, kernels32,
                                                         masks, targets):
        """DESIGN.md §10: f32 litho error within 1e-3 relative of f64."""
        e64 = LithoEngine.for_kernels(kernels32, precision="f64")
        e32 = LithoEngine.for_kernels(kernels32, precision="f32")
        err64 = e64.litho_error(masks, targets)
        err32 = e32.litho_error(masks, targets)
        delta = np.abs(err32 - err64) / np.maximum(err64, 1.0)
        assert delta.max() <= 1e-3, delta

    def test_f32_gradient_direction_matches_f64(self, kernels32, masks,
                                                targets):
        e64 = LithoEngine.for_kernels(kernels32, precision="f64")
        e32 = LithoEngine.for_kernels(kernels32, precision="f32")
        _, g64 = e64.error_and_gradient_wrt_mask(masks, targets)
        _, g32 = e32.error_and_gradient_wrt_mask(masks, targets)
        scale = np.abs(g64).max()
        assert np.abs(g32 - g64).max() <= 1e-3 * scale

    def test_compact_spectrum_matches_full_rfft_path(self, kernels32,
                                                     masks):
        """The matmul-DFT forward is exact, not approximate: the
        discarded frequency bins are identically zero in the kernels."""
        engine = LithoEngine.for_kernels(kernels32, precision="f64")
        spectrum = real_spectrum(masks)
        aerial_direct = engine.aerial(masks)
        batch, _ = engine._as_batch(masks)
        aerial_from_spec, _ = engine._forward_impl(batch, 1.0, False,
                                                   spectrum=spectrum)
        np.testing.assert_allclose(aerial_from_spec, aerial_direct,
                                   rtol=1e-10, atol=1e-12)


class TestWorkspace:
    def test_reuses_buffer_for_same_key(self):
        ws = Workspace(enabled=True)
        a = ws.get("k", (4, 4), np.float64)
        b = ws.get("k", (4, 4), np.float64)
        assert a is b
        assert ws.hits == 1 and ws.misses == 1

    def test_reallocates_on_shape_change(self):
        ws = Workspace(enabled=True)
        a = ws.get("k", (4, 4), np.float64)
        b = ws.get("k", (8, 8), np.float64)
        assert a is not b
        assert b.shape == (8, 8)

    def test_reallocates_on_dtype_change(self):
        ws = Workspace(enabled=True)
        a = ws.get("k", (4,), np.float64)
        b = ws.get("k", (4,), np.float32)
        assert a is not b
        assert b.dtype == np.float32

    def test_disabled_always_allocates(self):
        ws = Workspace(enabled=False)
        a = ws.get("k", (4,), np.float64)
        b = ws.get("k", (4,), np.float64)
        assert a is not b

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKSPACE", "off")
        assert not Workspace().enabled
        monkeypatch.delenv("REPRO_WORKSPACE")
        assert Workspace().enabled

    def test_zeros_is_cleared_on_reuse(self):
        ws = Workspace(enabled=True)
        a = ws.zeros("z", (3,), np.float64)
        a[:] = 7.0
        b = ws.zeros("z", (3,), np.float64)
        assert b is a
        np.testing.assert_array_equal(b, 0.0)

    def test_engine_workspace_hits_on_repeated_calls(self, kernels32,
                                                     masks, targets):
        engine = LithoEngine.for_kernels(kernels32)
        engine.error_and_gradient_wrt_mask(masks, targets)
        before = engine.workspace.hits
        engine.error_and_gradient_wrt_mask(masks, targets)
        assert engine.workspace.hits > before

    def test_results_do_not_alias_workspace(self, kernels32, masks):
        """Escaping outputs must be private copies, not arena views."""
        engine = LithoEngine.for_kernels(kernels32)
        first = engine.aerial(masks)
        snapshot = first.copy()
        engine.aerial(np.roll(masks, 5, axis=-1))
        np.testing.assert_array_equal(first, snapshot)
