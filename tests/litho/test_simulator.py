"""Unit tests for the LithoSimulator facade."""

import numpy as np
import pytest

from repro.litho import LithoConfig, LithoSimulator


def _wire(grid, width=10):
    mask = np.zeros((grid, grid))
    lo = grid // 2 - width // 2
    mask[lo:lo + width, 4:grid - 4] = 1.0
    return mask


class TestSimulator:
    def test_wafer_is_binary(self, sim32):
        wafer = sim32.wafer_image(_wire(32))
        assert set(np.unique(wafer)) <= {0.0, 1.0}

    def test_wire_prints_near_target_size(self, sim64):
        """An 80nm wire at nominal dose must print with its area within
        ~25% of drawn — the physics sanity check of the whole model."""
        mask = _wire(64)
        wafer = sim64.wafer_image(mask)
        assert 0.75 * mask.sum() < wafer.sum() < 1.25 * mask.sum()

    def test_relaxed_wafer_tracks_hard(self, sim32):
        mask = _wire(32)
        hard = sim32.wafer_image(mask)
        relaxed = sim32.relaxed_wafer(mask)
        np.testing.assert_allclose(np.round(relaxed), hard, atol=0.4)

    def test_corners_nested(self, sim64):
        """Over-dose prints a superset of nominal, under-dose a subset
        (intensity scaling is monotone)."""
        corners = sim64.process_corners(_wire(64))
        assert np.all(corners.outer >= corners.nominal)
        assert np.all(corners.nominal >= corners.inner)

    def test_litho_error_zero_for_perfect_match(self, sim32):
        mask = _wire(32)
        wafer = sim32.wafer_image(mask)
        assert sim32.litho_error(mask, wafer) == 0.0

    def test_litho_error_counts_mismatch(self, sim32):
        mask = _wire(32)
        wafer = sim32.wafer_image(mask)
        flipped = wafer.copy()
        flipped[0, 0] = 1.0 - flipped[0, 0]
        assert sim32.litho_error(mask, flipped) == 1.0

    def test_kernel_injection_validated(self, litho32, kernels32):
        other = LithoConfig.small(64)
        with pytest.raises(ValueError):
            LithoSimulator(other, kernels32)

    def test_properties(self, sim32, litho32):
        assert sim32.grid == 32
        assert sim32.threshold == litho32.threshold

    def test_dose_monotonicity_of_printed_area(self, sim64):
        mask = _wire(64)
        areas = [sim64.wafer_image(mask, dose=d).sum()
                 for d in (0.9, 1.0, 1.1)]
        assert areas[0] <= areas[1] <= areas[2]
