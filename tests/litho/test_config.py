"""Unit tests for lithography configuration validation."""

import pytest

from repro.litho import LithoConfig, OpticsConfig


class TestOpticsConfig:
    def test_defaults_match_32nm_immersion(self):
        optics = OpticsConfig()
        assert optics.wavelength == 193.0
        assert optics.na == 1.35
        assert optics.num_kernels == 24  # the paper's N_h

    def test_cutoff_frequency(self):
        optics = OpticsConfig(wavelength=193.0, na=1.35, sigma_outer=0.8)
        expected = 1.35 * 1.8 / 193.0
        assert abs(optics.cutoff_frequency - expected) < 1e-12

    @pytest.mark.parametrize("kwargs", [
        {"wavelength": 0.0},
        {"na": -1.0},
        {"sigma_inner": 0.9, "sigma_outer": 0.8},
        {"sigma_outer": 1.5},
        {"num_kernels": 0},
        {"source_points": 2},
    ])
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            OpticsConfig(**kwargs)


class TestLithoConfig:
    def test_paper_settings(self):
        config = LithoConfig.paper()
        assert config.grid == 256
        assert config.pixel_nm == 8.0
        assert config.extent_nm == 2048.0

    def test_small_preserves_optics(self):
        small = LithoConfig.small(64)
        assert small.optics == LithoConfig.paper().optics
        assert small.grid == 64

    def test_pixel_area(self):
        assert LithoConfig.small(64).pixel_area_nm2 == 64.0

    def test_with_grid(self):
        derived = LithoConfig.paper().with_grid(128)
        assert derived.grid == 128
        assert derived.pixel_nm == 8.0

    def test_undersampled_pixel_rejected(self):
        # 193nm/1.35NA cutoff ~ 0.0126 1/nm; 50nm pixels can't sample it.
        with pytest.raises(ValueError, match="undersamples"):
            LithoConfig(grid=64, pixel_nm=50.0)

    @pytest.mark.parametrize("kwargs", [
        {"grid": 4},
        {"pixel_nm": -1.0},
        {"threshold": 0.0},
        {"threshold": 1.0},
        {"resist_steepness": 0.0},
        {"mask_steepness": -2.0},
        {"dose_variation": 1.0},
    ])
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            LithoConfig(**kwargs)
