"""OpenMetrics/Prometheus exposition of metrics registries."""

import urllib.request

import pytest

from repro.obs import MetricsRegistry
from repro.obs.export import (CONTENT_TYPE, MetricsServer, metric_name,
                              render_openmetrics, split_labels,
                              write_openmetrics)


def _registry():
    registry = MetricsRegistry()
    registry.counter("litho.forward_calls").inc(3)
    registry.gauge("pool.utilization").set(0.75)
    registry.gauge("pool.worker.rss_bytes|pid=123").set(2048)
    histogram = registry.histogram("pool.task_seconds")
    histogram.observe(0.5)
    histogram.observe(1.5)
    return registry


class TestNaming:
    def test_split_labels(self):
        assert split_labels("a.b") == ("a.b", {})
        assert split_labels("a.b|pid=7") == ("a.b", {"pid": "7"})
        assert split_labels("x|pid=7,host=n1") == (
            "x", {"pid": "7", "host": "n1"})

    def test_metric_name_sanitizes_and_prefixes(self):
        assert metric_name("litho.forward_calls") == \
            "repro_litho_forward_calls"
        assert metric_name("a b-c", prefix="") == "a_b_c"
        assert metric_name("ns:ok") == "repro_ns:ok"


class TestRender:
    def test_counter_gauge_histogram_families(self):
        text = render_openmetrics(_registry())
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_litho_forward_calls counter" in text
        assert "repro_litho_forward_calls_total 3" in text
        assert "repro_pool_utilization 0.75" in text
        assert 'repro_pool_worker_rss_bytes{pid="123"} 2048' in text
        assert "# TYPE repro_pool_task_seconds summary" in text
        assert "repro_pool_task_seconds_count 2" in text
        assert "repro_pool_task_seconds_sum 2" in text
        assert "repro_pool_task_seconds_min 0.5" in text
        assert "repro_pool_task_seconds_max 1.5" in text

    def test_type_line_precedes_samples_once(self):
        lines = render_openmetrics(_registry()).splitlines()
        type_lines = [line for line in lines if line.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines))
        # families are emitted sorted by name
        names = [line.split()[2] for line in type_lines]
        assert names == sorted(names)

    def test_multiple_registries_merge(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a").inc()
        second.gauge("b").set(2)
        text = render_openmetrics([first, second])
        assert "repro_a_total 1" in text
        assert "repro_b 2" in text

    def test_write_openmetrics(self, tmp_path):
        path = write_openmetrics(_registry(), str(tmp_path / "m.txt"))
        content = open(path, encoding="utf-8").read()
        assert content == render_openmetrics(_registry())


class TestMetricsServer:
    def test_http_round_trip_sees_live_values(self):
        registry = MetricsRegistry()
        registry.gauge("live").set(1)
        with MetricsServer(registry) as server:
            assert server.port > 0
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
            assert "repro_live 1" in body and body.endswith("# EOF\n")
            registry.gauge("live").set(2)  # re-snapshotted per scrape
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert "repro_live 2" in response.read().decode("utf-8")

    def test_stop_frees_port(self):
        server = MetricsServer(MetricsRegistry()).start()
        url = server.url
        server.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(url, timeout=1)
