"""Metrics registry tests, including the EngineStats facade."""

import numpy as np

from repro.litho import LithoEngine
from repro.litho.engine import EngineStats
from repro.obs.registry import (Counter, Gauge, Histogram, MetricsRegistry,
                                default_registry)


class TestCounter:
    def test_inc_and_reset(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        counter.reset()
        assert counter.value == 0.0


class TestGauge:
    def test_set_keeps_last_value(self):
        gauge = Gauge("g")
        gauge.set(4)
        gauge.set(2.5)
        assert gauge.value == 2.5
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_streaming_summary(self):
        hist = Histogram("h")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary == {"count": 3, "sum": 6.0, "mean": 2.0,
                           "min": 1.0, "max": 3.0}
        assert hist.mean == 2.0

    def test_empty_summary_is_finite(self):
        assert Histogram("h").summary() == {
            "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}

    def test_values_kept_only_on_request(self):
        plain = Histogram("p")
        plain.observe(1.0)
        assert plain.values() == []
        keeping = Histogram("k", keep_values=True)
        keeping.observe(1.0)
        keeping.observe(2.0)
        assert keeping.values() == [1.0, 2.0]

    def test_reset_clears_everything(self):
        hist = Histogram("h", keep_values=True)
        hist.observe(5.0)
        hist.reset()
        assert hist.summary()["count"] == 0
        assert hist.values() == []


class TestRegistry:
    def test_create_on_first_use_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(2)
        registry.gauge("lr").set(0.1)
        registry.histogram("err").observe(7.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"calls": 2.0}
        assert snap["gauges"] == {"lr": 0.1}
        assert snap["histograms"]["err"]["count"] == 1

    def test_reset_resets_all_metrics(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc()
        registry.histogram("err").observe(1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"]["calls"] == 0.0
        assert snap["histograms"]["err"]["count"] == 0

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestEngineStatsFacade:
    def test_attributes_are_typed_registry_reads(self):
        stats = EngineStats()
        stats.record_forward(8, 0.5)
        stats.record_forward(2, 0.25)
        stats.record_gradient(4, 1.0)
        assert stats.forward_calls == 2
        assert isinstance(stats.forward_calls, int)
        assert stats.forward_masks == 10
        assert stats.forward_seconds == 0.75
        assert stats.gradient_calls == 1
        assert stats.gradient_masks == 4

    def test_counters_live_in_the_registry(self):
        registry = MetricsRegistry()
        stats = EngineStats(registry)
        stats.record_forward(3, 0.1)
        assert registry.counter("litho.forward_calls").value == 1.0
        assert registry.counter("litho.forward_masks").value == 3.0

    def test_snapshot_delta_reset_api(self):
        stats = EngineStats()
        stats.record_forward(1, 0.1)
        before = stats.snapshot()
        stats.record_gradient(2, 0.2)
        delta = stats.delta(before)
        assert delta["forward_calls"] == 0
        assert delta["gradient_calls"] == 1
        assert delta["gradient_masks"] == 2
        stats.reset()
        assert stats.snapshot() == {
            "forward_calls": 0, "forward_masks": 0, "forward_seconds": 0.0,
            "gradient_calls": 0, "gradient_masks": 0,
            "gradient_seconds": 0.0}

    def test_unknown_attribute_raises(self):
        stats = EngineStats()
        try:
            stats.no_such_field
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected AttributeError")

    def test_engine_owns_registry_backed_stats(self, kernels32):
        engine = LithoEngine.for_kernels(kernels32)
        assert engine.stats.registry is engine.metrics
        mask = np.zeros((32, 32))
        mask[8:24, 8:24] = 1.0
        before = engine.stats.snapshot()
        engine.aerial(mask)
        delta = engine.stats.delta(before)
        assert delta["forward_calls"] == 1
        assert delta["forward_masks"] == 1
        assert engine.metrics.counter("litho.forward_calls").value >= 1.0
