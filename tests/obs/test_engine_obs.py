"""Engine instrumentation reconciliation (the double-count fix).

The adjoint path runs a full forward pipeline internally; before the
metrics unification that nested forward bumped ``forward_*`` too, so
forward + gradient stats overlapped.  These tests pin the fixed
semantics: span counts and stats counters reconcile 1:1, and the
nested forward is attributed to ``gradient_*`` only.
"""

import numpy as np
import pytest

from repro.litho import LithoEngine
from repro.obs import trace


@pytest.fixture()
def engine(kernels32):
    return LithoEngine.for_kernels(kernels32)


def _masks(batch):
    rng = np.random.default_rng(3)
    return np.clip(rng.random((batch, 32, 32)) + 0.2, 0.0, 1.0)


def _targets(batch):
    rng = np.random.default_rng(4)
    return (rng.random((batch, 32, 32)) > 0.7).astype(float)


def _span_count(tracer, name):
    return sum(1 for s in tracer.spans() if s.name == name)


class TestSpanStatsReconciliation:
    def test_forward_spans_match_forward_calls(self, engine):
        before = engine.stats.snapshot()
        with trace.tracing() as tracer:
            engine.aerial(_masks(1)[0])
            engine.aerial(_masks(4))
        delta = engine.stats.delta(before)
        assert _span_count(tracer, "litho.forward") == 2
        assert delta["forward_calls"] == 2
        assert delta["forward_masks"] == 5

    def test_adjoint_spans_match_gradient_calls(self, engine):
        before = engine.stats.snapshot()
        with trace.tracing() as tracer:
            engine.error_and_gradient_wrt_mask(_masks(2), _targets(2))
        delta = engine.stats.delta(before)
        assert _span_count(tracer, "litho.adjoint") == 1
        assert delta["gradient_calls"] == 1
        assert delta["gradient_masks"] == 2

    def test_adjoint_does_not_double_count_forward(self, engine):
        """The nested forward inside the adjoint is gradient work."""
        before = engine.stats.snapshot()
        with trace.tracing() as tracer:
            engine.error_and_gradient_wrt_mask(_masks(2), _targets(2))
        delta = engine.stats.delta(before)
        assert delta["forward_calls"] == 0
        assert delta["forward_seconds"] == 0.0
        assert _span_count(tracer, "litho.forward") == 0

    def test_chunked_adjoint_is_one_call_one_span(self, engine):
        batch = engine._gradient_chunk * 2 + 1
        before = engine.stats.snapshot()
        with trace.tracing() as tracer:
            errors, grads = engine.error_and_gradient_wrt_mask(
                _masks(batch), _targets(batch))
        assert errors.shape == (batch,)
        assert grads.shape == (batch, 32, 32)
        delta = engine.stats.delta(before)
        assert delta["gradient_calls"] == 1
        assert delta["gradient_masks"] == batch
        assert delta["forward_calls"] == 0
        assert _span_count(tracer, "litho.adjoint") == 1
        assert _span_count(tracer, "litho.forward") == 0

    def test_spectrum_spans_nest_under_pipeline_spans(self, engine):
        with trace.tracing() as tracer:
            engine.aerial(_masks(1))
        spans = {s.name: s for s in tracer.spans()}
        assert spans["litho.spectrum"].depth == \
            spans["litho.forward"].depth + 1

    def test_seconds_partition_engine_time(self, engine):
        before = engine.stats.snapshot()
        engine.aerial(_masks(2))
        engine.error_and_gradient_wrt_mask(_masks(2), _targets(2))
        delta = engine.stats.delta(before)
        assert delta["forward_seconds"] > 0.0
        assert delta["gradient_seconds"] > 0.0

    def test_results_unchanged_by_tracing(self, engine):
        masks, targets = _masks(2), _targets(2)
        plain_err, plain_grad = engine.error_and_gradient_wrt_mask(
            masks, targets)
        with trace.tracing():
            traced_err, traced_grad = engine.error_and_gradient_wrt_mask(
                masks, targets)
        np.testing.assert_array_equal(plain_err, traced_err)
        np.testing.assert_array_equal(plain_grad, traced_grad)
