"""Tracer shutdown hardening (ISSUE 8 satellite).

A process that exits while a tracer is still installed (worker killed
mid-task, uncaught exception, ``sys.exit`` inside a span) must not
silently truncate the JSONL span stream: the atexit hook flushes and
closes it and prints a partial-trace warning to stderr.
"""

import json
import os
import subprocess
import sys

from repro.obs import trace

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _run_script(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    return subprocess.run([sys.executable, "-c", script], cwd=tmp_path,
                          env=env, capture_output=True, text=True,
                          timeout=60)


def test_exit_without_disable_flushes_stream_and_warns(tmp_path):
    result = _run_script(
        "from repro.obs import trace\n"
        "trace.enable(jsonl_path='spans.jsonl')\n"
        "with trace.span('work'):\n"
        "    pass\n"
        "raise SystemExit(0)\n",  # exits without trace.disable()
        tmp_path)
    assert result.returncode == 0
    assert "partial trace" in result.stderr
    assert "1 finished spans" in result.stderr
    lines = (tmp_path / "spans.jsonl").read_text().strip().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])  # complete strict-JSON line, not torn
    assert record["name"] == "work"


def test_clean_disable_does_not_warn(tmp_path):
    result = _run_script(
        "from repro.obs import trace\n"
        "trace.enable(jsonl_path='spans.jsonl')\n"
        "with trace.span('work'):\n"
        "    pass\n"
        "trace.disable()\n",
        tmp_path)
    assert result.returncode == 0
    assert "partial trace" not in result.stderr


def test_atexit_flush_in_process():
    tracer = trace.enable(trace.Tracer())
    with trace.span("x"):
        pass
    trace._atexit_flush()
    assert not trace.is_enabled()
    assert len(tracer.spans()) == 1
    # Idempotent once nothing is active.
    trace._atexit_flush()


def test_reset_for_child_drops_without_closing(tmp_path):
    path = str(tmp_path / "spans.jsonl")
    tracer = trace.enable(jsonl_path=path)
    with trace.span("parent-span"):
        pass
    trace.reset_for_child()  # what _worker_init does after fork
    assert not trace.is_enabled()
    assert tracer._jsonl_fh is not None and not tracer._jsonl_fh.closed
    trace.enable(tracer)  # parent still owns a working stream
    with trace.span("after"):
        pass
    trace.disable()
    lines = open(path, encoding="utf-8").read().strip().splitlines()
    assert [json.loads(line)["name"] for line in lines] == \
        ["parent-span", "after"]
