"""Disabled-instrumentation overhead guard.

The acceptance bar is deterministic rather than a noisy A/B run: we
measure the marginal cost of one *disabled* instrumentation point (the
``trace.span`` global-None check plus the shared null context manager)
and compare the per-forward instrumentation budget against the engine
forward time itself.  An engine forward opens two spans
(``litho.forward`` + ``litho.spectrum``) and reads the profiler global
zero times (the engine is not a tensor op), so its disabled overhead
is two null spans plus two stats counter bumps.

The bound is deliberately generous (25%): the real budget is ~1%, but
both sides of the ratio are sub-microsecond timings that CI scheduling
noise can easily triple, and the guard only needs to catch
order-of-magnitude regressions (e.g. a span that starts allocating or
formatting while disabled).
"""

import time

import numpy as np

from repro.litho import LithoEngine
from repro.obs import profiler, trace

# Spans opened by one engine.aerial call while tracing is disabled.
SPANS_PER_FORWARD = 2


def _best_of(fn, repeats=7):
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _disabled_span_cost(iterations=20000):
    assert not trace.is_enabled()

    def loop():
        for _ in range(iterations):
            with trace.span("overhead-probe"):
                pass

    return _best_of(loop, repeats=5) / iterations


def test_disabled_span_cost_is_small_versus_engine_forward(kernels64):
    engine = LithoEngine.for_kernels(kernels64)
    mask = np.zeros((64, 64))
    mask[16:48, 16:48] = 1.0

    per_span = _disabled_span_cost()
    forward = _best_of(lambda: engine.aerial(mask))

    overhead = SPANS_PER_FORWARD * per_span
    assert overhead < 0.25 * forward, (
        f"disabled instrumentation costs {overhead * 1e6:.2f} us per "
        f"forward vs forward time {forward * 1e6:.2f} us "
        f"({100.0 * overhead / forward:.2f}%)")


def test_disabled_profiler_check_is_small_versus_matmul():
    """The per-op profiler guard is a single global read."""
    assert profiler.ACTIVE is None
    a = np.random.default_rng(0).random((64, 64))

    iterations = 20000

    def guard_loop():
        for _ in range(iterations):
            if profiler.ACTIVE is not None:  # pragma: no cover
                raise AssertionError
    per_check = _best_of(guard_loop, repeats=5) / iterations

    matmul = _best_of(lambda: a @ a)
    assert per_check < 0.25 * matmul


def test_null_span_allocates_nothing():
    first = trace.span("a")
    second = trace.span("b", key=1)
    assert first is second is trace._NULL_SPAN


def test_pool_task_bookkeeping_under_5pct_of_forward(kernels64):
    """Worker-pool disabled-telemetry overhead guard (ISSUE 8).

    With tracing off, ``_run_task`` still does per-task bookkeeping:
    two warm-engine counter snapshots plus condensing the delta into a
    :class:`TaskTelemetry`.  Measured deterministically in-process
    (the same code the worker runs), it must stay under 5% of one
    64 px engine forward — the smallest unit of real work a task does.
    """
    from repro.litho import LithoEngine
    from repro.obs.aggregate import capture_task
    from repro.parallel import pool as pool_mod

    engine = LithoEngine.for_kernels(kernels64)
    mask = np.zeros((64, 64))
    mask[16:48, 16:48] = 1.0
    engine.aerial(mask)  # warm

    saved = pool_mod._WORKER_STATE["engines"]
    pool_mod._WORKER_STATE["engines"] = [
        (engine, dict(engine.stats.snapshot()))]
    try:
        def bookkeeping():
            before = pool_mod._engine_totals()
            after = pool_mod._engine_totals()
            delta = {name: after[name] - before.get(name, 0.0)
                     for name in after}
            capture_task(None, None, delta, 0.0)

        iterations = 2000

        def loop():
            for _ in range(iterations):
                bookkeeping()

        per_task = _best_of(loop, repeats=5) / iterations
    finally:
        pool_mod._WORKER_STATE["engines"] = saved

    forward = _best_of(lambda: engine.aerial(mask))
    assert per_task < 0.05 * forward, (
        f"pool task bookkeeping costs {per_task * 1e6:.2f} us vs forward "
        f"{forward * 1e6:.2f} us ({100.0 * per_task / forward:.2f}%)")
