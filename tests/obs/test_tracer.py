"""Span tracer tests: nesting, export round-trips, enable/disable."""

import json
import os
import threading

from repro.obs import trace
from repro.obs.trace import Tracer, format_span_table


class TestDisabled:
    def test_span_returns_shared_null_singleton(self):
        assert trace.active() is None
        assert trace.span("anything") is trace._NULL_SPAN
        assert trace.span("other", key=1) is trace._NULL_SPAN

    def test_null_span_is_a_working_context_manager(self):
        with trace.span("noop") as span:
            assert span is trace._NULL_SPAN

    def test_null_span_does_not_swallow_exceptions(self):
        try:
            with trace.span("noop"):
                raise ValueError("boom")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("exception was swallowed")


class TestNesting:
    def test_depths_follow_lexical_nesting(self):
        with trace.tracing() as tracer:
            with trace.span("outer"):
                with trace.span("inner"):
                    with trace.span("innermost"):
                        pass
                with trace.span("sibling"):
                    pass
        depths = {s.name: s.depth for s in tracer.spans()}
        assert depths == {"outer": 0, "inner": 1, "innermost": 2,
                          "sibling": 1}

    def test_children_finish_before_parents(self):
        with trace.tracing() as tracer:
            with trace.span("parent"):
                with trace.span("child"):
                    pass
        names = [s.name for s in tracer.spans()]
        assert names == ["child", "parent"]

    def test_parent_contains_child_interval(self):
        with trace.tracing() as tracer:
            with trace.span("parent"):
                with trace.span("child"):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        parent, child = spans["parent"], spans["child"]
        assert parent.start <= child.start
        assert child.end <= parent.end + 1e-9

    def test_args_recorded(self):
        with trace.tracing() as tracer:
            with trace.span("step", iteration=3, batch=8):
                pass
        (span,) = tracer.spans()
        assert span.args == {"iteration": 3, "batch": 8}

    def test_span_recorded_even_when_body_raises(self):
        with trace.tracing() as tracer:
            try:
                with trace.span("failing"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        assert [s.name for s in tracer.spans()] == ["failing"]

    def test_summary_aggregates_counts_and_seconds(self):
        with trace.tracing() as tracer:
            for _ in range(3):
                with trace.span("repeated"):
                    pass
            with trace.span("once"):
                pass
        summary = tracer.summary()
        assert summary["repeated"]["count"] == 3
        assert summary["once"]["count"] == 1
        assert summary["repeated"]["seconds"] >= 0.0


class TestCoverage:
    def test_top_level_seconds_counts_only_depth_zero(self):
        with trace.tracing() as tracer:
            with trace.span("top"):
                with trace.span("nested"):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert tracer.top_level_seconds() == spans["top"].duration

    def test_coverage_fraction_in_unit_interval(self):
        with trace.tracing() as tracer:
            with trace.span("top"):
                pass
            coverage = tracer.coverage()
        assert 0.0 <= coverage <= 1.0

    def test_coverage_with_explicit_wall(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        duration = tracer.spans()[0].duration
        assert abs(tracer.coverage(wall_seconds=duration * 2) - 0.5) < 1e-12


class TestChromeExport:
    def test_round_trip_is_valid_chrome_trace(self, tmp_path):
        with trace.tracing() as tracer:
            with trace.span("outer", clip="M1"):
                with trace.span("inner"):
                    pass
        path = tracer.write_chrome_trace(str(tmp_path / "trace.json"))
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["pid"] == os.getpid()
            assert event["dur"] >= 0.0
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"] == {"clip": "M1"}

    def test_microsecond_units(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        span = tracer.spans()[0]
        event = tracer.to_chrome()["traceEvents"][0]
        assert event["ts"] == span.start * 1e6
        assert event["dur"] == span.duration * 1e6


class TestJsonlStream:
    def test_spans_streamed_as_strict_json_lines(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with trace.tracing(jsonl_path=path) as tracer:
            with trace.span("a", n=1):
                pass
            with trace.span("b"):
                pass
        with open(path, "r", encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert [line["name"] for line in lines] == ["a", "b"]
        assert lines[0]["args"] == {"n": 1}
        assert set(lines[0]) == {"name", "start", "duration", "tid",
                                 "depth", "args"}
        assert tracer.spans()[0].duration == lines[0]["duration"]


class TestThreads:
    def test_threads_nest_independently(self):
        barrier = threading.Barrier(2)

        def work():
            barrier.wait()
            with trace.span("thread_top"):
                with trace.span("thread_inner"):
                    pass

        with trace.tracing() as tracer:
            threads = [threading.Thread(target=work) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        tops = [s for s in tracer.spans() if s.name == "thread_top"]
        inners = [s for s in tracer.spans() if s.name == "thread_inner"]
        assert len(tops) == len(inners) == 2
        # Each thread starts its own stack: depth 0 outer, depth 1 inner,
        # regardless of interleaving.
        assert {s.depth for s in tops} == {0}
        assert {s.depth for s in inners} == {1}
        assert len({s.tid for s in tops}) == 2


class TestEnableDisable:
    def test_enable_installs_and_disable_returns_tracer(self):
        tracer = trace.enable()
        assert trace.active() is tracer
        assert trace.is_enabled()
        with trace.span("live"):
            pass
        returned = trace.disable()
        assert returned is tracer
        assert trace.active() is None
        assert [s.name for s in tracer.spans()] == ["live"]

    def test_tracing_restores_previous_tracer(self):
        outer = trace.enable()
        try:
            with trace.tracing() as inner:
                assert trace.active() is inner
            assert trace.active() is outer
        finally:
            trace.disable()


class TestSpanTable:
    def test_table_lists_spans_sorted_by_total_time(self):
        summary = {"fast": {"count": 2, "seconds": 0.001},
                   "slow": {"count": 1, "seconds": 0.5}}
        table = format_span_table(summary)
        lines = table.splitlines()
        assert "span" in lines[0] and "calls" in lines[0]
        assert lines[2].startswith("slow")
        assert lines[3].startswith("fast")

    def test_percentages_use_wall_when_given(self):
        summary = {"half": {"count": 1, "seconds": 0.5}}
        table = format_span_table(summary, wall_seconds=1.0)
        assert "50.0%" in table
