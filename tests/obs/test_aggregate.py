"""Cross-process telemetry aggregation (ISSUE 8 tentpole).

Covers the worker-side condensation (:func:`capture_task`: bounded
span shipping, complete summaries, engine deltas), the parent-side
Chrome conversion (clock rebasing onto the parent epoch, worker
pid/tid lanes), and the fleet merge/reconciliation that backs the
``repro profile`` and ``repro table2`` fleet tables.
"""

import time

import pytest

from repro.obs import profiler, trace
from repro.obs.aggregate import (DEFAULT_SPAN_CAP, SPAN_CAP_ENV,
                                 FleetTelemetry, TaskTelemetry,
                                 capture_task, chrome_events,
                                 format_engine_table,
                                 process_metadata_event, reconcile,
                                 span_cap)


def _traced_task(names=("litho.forward", "litho.adjoint")):
    """Run a tiny traced+profiled workload and capture it."""
    tracer = trace.enable(trace.Tracer())
    prof = profiler.enable()
    for name in names:
        with trace.span(name):
            time.sleep(0.001)
    trace.disable()
    profiler.disable()
    delta = {"forward_calls": 1.0, "gradient_calls": 1.0}
    return capture_task(tracer, prof, delta, seconds=0.5), tracer


class TestSpanCap:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SPAN_CAP_ENV, raising=False)
        assert span_cap() == DEFAULT_SPAN_CAP

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SPAN_CAP_ENV, "7")
        assert span_cap() == 7

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(SPAN_CAP_ENV, "many")
        assert span_cap() == DEFAULT_SPAN_CAP


class TestCaptureTask:
    def test_without_instrumentation_ships_engine_delta(self):
        telemetry = capture_task(None, None, {"forward_calls": 3.0},
                                 seconds=1.5)
        assert telemetry.engine_delta == {"forward_calls": 3.0}
        assert telemetry.seconds == 1.5
        assert telemetry.spans == [] and telemetry.span_summary == {}

    def test_spans_and_summary_captured(self):
        telemetry, tracer = _traced_task()
        assert telemetry.epoch == tracer.epoch
        names = [name for name, *_ in telemetry.spans]
        assert names == ["litho.forward", "litho.adjoint"]
        assert telemetry.span_summary["litho.forward"]["count"] == 1
        assert telemetry.dropped_spans == 0

    def test_cap_keeps_longest_and_counts_drops(self):
        tracer = trace.enable(trace.Tracer())
        with trace.span("long"):
            time.sleep(0.005)
        for _ in range(5):
            with trace.span("short"):
                pass
        trace.disable()
        telemetry = capture_task(tracer, None, {}, seconds=0.1, cap=2)
        assert len(telemetry.spans) == 2
        assert telemetry.dropped_spans == 4
        assert "long" in [name for name, *_ in telemetry.spans]
        # The summary stays complete even when events are dropped.
        assert telemetry.span_summary["short"]["count"] == 5


class TestChromeEvents:
    def test_rebase_and_lanes(self):
        telemetry, tracer = _traced_task()
        telemetry.pid = 4242
        parent_epoch = tracer.epoch - 1.0  # parent started 1s earlier
        events = chrome_events(telemetry, parent_epoch)
        assert len(events) == len(telemetry.spans)
        for event, (name, start, duration, tid, depth) in zip(
                events, telemetry.spans):
            assert event["name"] == name
            assert event["ph"] == "X"
            assert event["pid"] == 4242
            assert event["tid"] == tid
            assert event["args"]["depth"] == depth
            assert event["ts"] == pytest.approx((start + 1.0) * 1e6)
            assert event["dur"] == pytest.approx(duration * 1e6)

    def test_process_metadata_event(self):
        event = process_metadata_event(99, "repro worker 99")
        assert event["ph"] == "M" and event["name"] == "process_name"
        assert event["pid"] == 99
        assert event["args"]["name"] == "repro worker 99"

    def test_external_events_round_trip_through_tracer(self):
        telemetry, _ = _traced_task()
        telemetry.pid = 777
        parent = trace.Tracer()
        with parent.span("parallel.map"):
            pass
        parent.add_external_events([process_metadata_event(777, "w")])
        parent.add_external_events(chrome_events(telemetry, parent.epoch))
        chrome = parent.to_chrome()
        pids = {e["pid"] for e in chrome["traceEvents"]}
        assert pids == {parent.pid, 777}


class TestFleetTelemetry:
    def _telemetry(self, pid, forward=2.0):
        return TaskTelemetry(
            pid=pid, seconds=0.25,
            span_summary={"litho.forward": {"count": int(forward),
                                            "seconds": 0.1}},
            engine_delta={"forward_calls": forward, "forward_masks": forward,
                          "forward_seconds": 0.1},
            op_stats={"conv2d": {"calls": 4, "total_seconds": 0.05}},
            dropped_spans=1)

    def test_merge_sums_everything(self):
        fleet = FleetTelemetry()
        fleet.add(self._telemetry(1, forward=2.0))
        fleet.add(self._telemetry(1, forward=3.0))
        fleet.add(self._telemetry(2, forward=4.0))
        fleet.add(None)  # skipped tasks are ignored
        assert fleet.tasks == 3
        assert fleet.dropped_spans == 3
        assert fleet.engine_totals["forward_calls"] == 9.0
        assert fleet.span_summary["litho.forward"]["count"] == 9
        assert fleet.op_stats["conv2d"]["calls"] == 12
        # per-pid breakdowns power the worker_span_summary records
        assert fleet.pid_engine[1]["forward_calls"] == 5.0
        assert fleet.pid_span_summary[2]["litho.forward"]["count"] == 4
        assert fleet.engine_seconds == pytest.approx(0.3)

    def test_merged_summary_includes_parent(self):
        fleet = FleetTelemetry()
        fleet.add(self._telemetry(1, forward=2.0))
        merged = fleet.merged_summary(
            {"litho.forward": {"count": 1, "seconds": 0.2},
             "parallel.map": {"count": 1, "seconds": 0.5}})
        assert merged["litho.forward"]["count"] == 3
        assert merged["parallel.map"]["count"] == 1

    def test_reconcile_matches_and_mismatches(self):
        fleet = FleetTelemetry()
        fleet.add(self._telemetry(1, forward=2.0))
        result = fleet.reconcile()
        assert result["forward_calls"]["match"] is True
        assert result["gradient_calls"] == {"stats": 0, "spans": 0,
                                            "match": True}
        broken = reconcile({"forward_calls": 5},
                           {"litho.forward": {"count": 2, "seconds": 0.1}})
        assert broken["forward_calls"] == {"stats": 5, "spans": 2,
                                           "match": False}


def test_format_engine_table_rows():
    table = format_engine_table({"forward_calls": 4, "forward_masks": 4,
                                 "forward_seconds": 2.0,
                                 "gradient_calls": 8, "gradient_masks": 8,
                                 "gradient_seconds": 4.0})
    lines = table.splitlines()
    assert lines[0].startswith("fleet litho engine")
    assert any("forward" in line and "2.000" in line for line in lines)
    assert any("gradient" in line and "4.000" in line for line in lines)
