"""Guard rails for the observability tests.

Tracing and profiling install process-wide state; a test that leaks an
active tracer or profiler would silently change the behavior (and
timing) of every test that runs after it, so teardown always clears
both globals.
"""

import pytest

from repro.obs import profiler, trace


@pytest.fixture(autouse=True)
def _reset_observability_state():
    yield
    while trace.is_enabled():
        trace.disable()
    while profiler.ACTIVE is not None:
        profiler.disable()
