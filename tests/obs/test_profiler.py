"""Profiler tests: exact FLOP/byte accounting on known shapes."""

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.obs import profiler
from repro.obs.profiler import (Profiler, conv2d_flops,
                                conv_transpose2d_flops, matmul_flops)


class TestFlopFormulas:
    def test_conv2d_closed_form(self):
        # (N, C, F, OH, OW, KH, KW) = (2, 3, 4, 5, 6, 3, 3)
        assert conv2d_flops(2, 3, 4, 5, 6, 3, 3) == \
            2 * 2 * 4 * 5 * 6 * 3 * 3 * 3
        assert conv2d_flops(2, 3, 4, 5, 6, 3, 3, bias=True) == \
            2 * 2 * 4 * 5 * 6 * 3 * 3 * 3 + 2 * 4 * 5 * 6

    def test_conv_transpose2d_closed_form(self):
        # (N, C, H, W, F, KH, KW) = (1, 3, 4, 4, 2, 3, 3), output 8x8
        assert conv_transpose2d_flops(1, 3, 4, 4, 2, 3, 3) == \
            2 * 1 * 3 * 4 * 4 * 2 * 3 * 3
        assert conv_transpose2d_flops(1, 3, 4, 4, 2, 3, 3, oh=8, ow=8,
                                      bias=True) == \
            2 * 1 * 3 * 4 * 4 * 2 * 3 * 3 + 1 * 2 * 8 * 8

    def test_matmul_2d(self):
        assert matmul_flops((2, 3), (3, 4)) == 2 * 2 * 3 * 4

    def test_matmul_1d_promotion(self):
        assert matmul_flops((3,), (3,)) == 2 * 3
        assert matmul_flops((2, 3), (3,)) == 2 * 2 * 3
        assert matmul_flops((3,), (3, 4)) == 2 * 3 * 4

    def test_matmul_batched_broadcast(self):
        assert matmul_flops((5, 2, 3), (3, 4)) == 2 * 5 * 2 * 3 * 4
        assert matmul_flops((1, 7, 2, 3), (4, 1, 3, 5)) == \
            2 * (4 * 7) * 2 * 3 * 5


class TestOpAccounting:
    def test_conv2d_records_exact_flops_and_bytes(self):
        x = nn.Tensor(np.random.default_rng(0).random((2, 3, 8, 8)))
        w = nn.Parameter(np.random.default_rng(1).random((4, 3, 3, 3)))
        b = nn.Parameter(np.zeros(4))
        with Profiler() as prof:
            out = F.conv2d(x, w, b, stride=1, padding=1)
        stats = prof.op_stats()["conv2d"]
        assert stats["count"] == 1
        # Output is (2, 4, 8, 8); padding keeps the spatial size.
        assert stats["flops"] == conv2d_flops(2, 3, 4, 8, 8, 3, 3,
                                              bias=True)
        assert stats["nbytes"] == out.data.nbytes == 2 * 4 * 8 * 8 * 8
        assert stats["seconds"] > 0.0

    def test_conv_transpose2d_records_as_deconv2d(self):
        x = nn.Tensor(np.random.default_rng(0).random((1, 3, 4, 4)))
        w = nn.Parameter(np.random.default_rng(1).random((3, 2, 3, 3)))
        b = nn.Parameter(np.zeros(2))
        with Profiler() as prof:
            out = F.conv_transpose2d(x, w, b, stride=2, padding=1,
                                     output_padding=1)
        assert out.shape == (1, 2, 8, 8)
        stats = prof.op_stats()["deconv2d"]
        assert stats["count"] == 1
        assert stats["flops"] == conv_transpose2d_flops(
            1, 3, 4, 4, 2, 3, 3, oh=8, ow=8, bias=True)
        assert stats["nbytes"] == out.data.nbytes

    def test_matmul_records_exact_flops(self):
        a = nn.Tensor(np.ones((4, 5)), requires_grad=True)
        b = nn.Tensor(np.ones((5, 6)), requires_grad=True)
        with Profiler() as prof:
            out = a @ b
        stats = prof.op_stats()["matmul"]
        assert stats["count"] == 1
        assert stats["flops"] == 2 * 4 * 5 * 6
        assert stats["nbytes"] == out.data.nbytes == 4 * 6 * 8

    def test_backward_time_attributed(self):
        a = nn.Tensor(np.ones((4, 5)), requires_grad=True)
        b = nn.Tensor(np.ones((5, 6)), requires_grad=True)
        with Profiler() as prof:
            (a @ b).sum().backward()
        stats = prof.op_stats()["matmul"]
        assert stats["backward_count"] == 1
        assert stats["backward_seconds"] >= 0.0

    def test_peak_bytes_tracks_live_allocations(self):
        prof = Profiler()
        prof.record("op", 0.0, nbytes=100)
        prof.record("op", 0.0, nbytes=50)
        prof.release(100)
        prof.record("op", 0.0, nbytes=25)
        assert prof.peak_nbytes == 150

    def test_disabled_records_nothing(self):
        assert profiler.ACTIVE is None
        a = nn.Tensor(np.ones((2, 2)))
        _ = a @ a  # must not raise and must not record anywhere
        prof = Profiler()
        assert prof.op_stats() == {}


class TestModuleTiming:
    def test_self_time_excludes_children(self):
        model = nn.Sequential(
            nn.Conv2d(1, 2, 3, padding=1, rng=np.random.default_rng(0)),
            nn.ReLU())
        x = nn.Tensor(np.random.default_rng(2).random((1, 1, 8, 8)))
        with Profiler() as prof:
            model(x)
        modules = prof.module_stats()
        assert modules["Sequential"]["count"] == 1
        assert modules["Conv2d"]["count"] == 1
        assert modules["ReLU"]["count"] == 1
        children = (modules["Conv2d"]["seconds"]
                    + modules["ReLU"]["seconds"])
        sequential = modules["Sequential"]
        assert sequential["seconds"] >= children - 1e-9
        expected_self = sequential["seconds"] - children
        assert abs(sequential["self_seconds"] - expected_self) < 1e-9

    def test_uninstrumented_call_path_when_disabled(self):
        model = nn.ReLU()
        x = nn.Tensor(np.ones((2, 2)))
        assert profiler.ACTIVE is None
        out = model(x)  # plain forward, no profiler interaction
        np.testing.assert_array_equal(out.data, np.ones((2, 2)))


class TestRendering:
    def _profiled(self):
        a = nn.Tensor(np.ones((4, 5)), requires_grad=True)
        b = nn.Tensor(np.ones((5, 6)), requires_grad=True)
        with Profiler() as prof:
            (a @ b).sum().backward()
        return prof

    def test_op_table_renders(self):
        table = self._profiled().table()
        assert "matmul" in table
        assert "GFLOP" in table
        assert "peak alloc" in table

    def test_module_table_renders(self):
        model = nn.Sequential(nn.ReLU())
        with Profiler() as prof:
            model(nn.Tensor(np.ones((2, 2))))
        table = prof.module_table()
        assert "Sequential" in table and "ReLU" in table
        assert "self ms" in table

    def test_totals(self):
        prof = self._profiled()
        assert prof.total_flops() == 2 * 4 * 5 * 6
        assert prof.total_seconds() >= 0.0


class TestEnableDisableStack:
    def test_nested_enable_restores_previous(self):
        outer = profiler.enable()
        try:
            inner = profiler.enable()
            assert profiler.active() is inner
            assert profiler.disable() is inner
            assert profiler.active() is outer
        finally:
            profiler.disable()
        assert profiler.active() is None
