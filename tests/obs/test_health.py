"""Heartbeat board, stall watchdog, and /proc resource sampling.

The watchdog tests drive :meth:`Watchdog.scan_once` with an explicit
``now`` instead of sleeping past the threshold, so stall detection is
tested deterministically; the end-to-end slow-task path is covered in
``tests/parallel/test_pool_telemetry.py``.
"""

import os
import time

import pytest

from repro.obs import MetricsRegistry
from repro.obs.health import (HeartbeatBoard, ResourceSampler, StallEvent,
                              Watchdog, WorkerHeartbeat, proc_available,
                              read_proc_sample)


@pytest.fixture()
def board():
    board = HeartbeatBoard(capacity=4, create=True)
    yield board
    board.close()
    board.unlink()


class TestHeartbeatBoard:
    def test_claim_and_read(self, board):
        slot = board.claim(pid=1234)
        beats = board.read()
        assert len(beats) == 1
        assert beats[0].pid == 1234
        assert beats[0].task_seq == 0
        assert beats[0].task_active is False
        assert beats[0].age() < 5.0
        board.clear(slot)
        assert board.read() == []

    def test_claims_do_not_collide(self, board):
        slots = {board.claim(pid=pid) for pid in (10, 11, 12, 13)}
        assert len(slots) == 4
        assert sorted(b.pid for b in board.read()) == [10, 11, 12, 13]

    def test_full_board_raises(self, board):
        for pid in range(1, 5):
            board.claim(pid=pid)
        with pytest.raises(RuntimeError, match="full"):
            board.claim(pid=99)

    def test_beat_updates_slot(self, board):
        slot = board.claim(pid=77)
        board.beat(slot, 77, task_seq=3, task_active=True)
        (beat,) = board.read()
        assert beat.task_seq == 3 and beat.task_active is True

    def test_attach_by_name_sees_parent_writes(self, board):
        attached = HeartbeatBoard(name=board.name, capacity=board.capacity)
        try:
            slot = attached.claim(pid=555)
            attached.beat(slot, 555, task_seq=2, task_active=True)
            (beat,) = board.read()
            assert beat.pid == 555 and beat.task_seq == 2
            assert attached.owner is False
            with pytest.raises(RuntimeError):
                attached.unlink()
        finally:
            attached.close()


class TestWorkerHeartbeat:
    def test_task_markers_and_daemon_beat(self, board):
        heartbeat = WorkerHeartbeat(board.name, board.capacity,
                                    interval=0.01)
        try:
            heartbeat.task_started()
            (beat,) = board.read()
            assert beat.task_seq == 1 and beat.task_active is True
            first_ts = beat.beat_ts
            deadline = time.time() + 2.0
            while time.time() < deadline:
                (beat,) = board.read()
                if beat.beat_ts > first_ts:  # daemon thread stamped
                    break
                time.sleep(0.01)
            assert beat.beat_ts > first_ts
            heartbeat.task_finished()
            (beat,) = board.read()
            assert beat.task_active is False
        finally:
            heartbeat.stop()


class TestWatchdog:
    def test_flags_silent_active_task_once(self, board):
        slot = board.claim(pid=42)
        board.beat(slot, 42, task_seq=1, task_active=True)
        seen = []
        watchdog = Watchdog(board, stall_after=5.0, on_stall=seen.append)
        assert watchdog.scan_once(now=time.time() + 1.0) == []
        events = watchdog.scan_once(now=time.time() + 10.0)
        assert len(events) == 1
        assert events[0].pid == 42 and events[0].task_seq == 1
        assert events[0].gap_seconds > 5.0
        assert seen == events
        # Same (pid, task_seq) is reported once, not every scan.
        assert watchdog.scan_once(now=time.time() + 20.0) == []
        # A new task by the same worker can stall again.
        board.beat(slot, 42, task_seq=2, task_active=True)
        assert len(watchdog.scan_once(now=time.time() + 30.0)) == 1

    def test_inactive_and_fresh_tasks_not_flagged(self, board):
        slot = board.claim(pid=7)
        board.beat(slot, 7, task_seq=1, task_active=False)
        watchdog = Watchdog(board, stall_after=0.01)
        assert watchdog.scan_once(now=time.time() + 60.0) == []
        board.beat(slot, 7, task_seq=2, task_active=True)
        assert watchdog.scan_once() == []  # just beat: gap ~ 0

    def test_thread_start_stop_idempotent(self, board):
        watchdog = Watchdog(board, stall_after=5.0, interval=0.01)
        watchdog.start()
        watchdog.start()
        time.sleep(0.05)
        watchdog.stop()
        watchdog.stop()
        assert watchdog._thread is None


@pytest.mark.skipif(not proc_available(), reason="no procfs")
class TestResourceSampling:
    def test_read_proc_sample_self(self):
        sample = read_proc_sample(os.getpid())
        assert sample is not None
        assert sample.rss_bytes > 1024 * 1024  # a python process > 1 MB
        assert sample.cpu_seconds >= 0.0
        assert sample.num_threads >= 1

    def test_dead_pid_returns_none(self):
        assert read_proc_sample(2 ** 22 + 1) is None

    def test_sampler_records_gauges_and_histograms(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry)
        pid = os.getpid()
        samples = sampler.sample([pid])
        assert len(samples) == 1
        snapshot = registry.snapshot()
        assert snapshot["gauges"][f"pool.worker.rss_bytes|pid={pid}"] > 0
        assert f"pool.worker.threads|pid={pid}" in snapshot["gauges"]
        assert snapshot["histograms"]["pool.worker.rss_bytes"]["count"] == 1
        # Second sample derives utilization from the CPU delta.
        sampler.sample([pid])
        snapshot = registry.snapshot()
        assert (f"pool.worker.cpu_utilization|pid={pid}"
                in snapshot["gauges"])

    def test_watchdog_drives_sampler(self, board):
        board.claim(pid=os.getpid())
        registry = MetricsRegistry()
        watchdog = Watchdog(board, stall_after=60.0,
                            sampler=ResourceSampler(registry))
        watchdog.scan_once()
        assert any(name.startswith("pool.worker.rss_bytes")
                   for name in registry.snapshot()["gauges"])


def test_stall_event_fields():
    event = StallEvent(pid=1, task_seq=2, gap_seconds=3.5)
    assert (event.pid, event.task_seq, event.gap_seconds) == (1, 2, 3.5)
