"""Unit tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro import nn
from repro.nn.modules import Parameter


def _quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def _step(param, opt, steps=1):
    for _ in range(steps):
        opt.zero_grad()
        # loss = 0.5 * p^2, grad = p
        param.grad = param.data.copy()
        opt.step()


class TestOptimizerBase:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_requires_positive_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([_quadratic_param()], lr=0.0)

    def test_zero_grad(self):
        p = _quadratic_param()
        p.grad = np.array([1.0])
        opt = nn.SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_skips_parameters_without_grad(self):
        p = _quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        opt.step()  # no grad set: must not crash or move
        np.testing.assert_allclose(p.data, [5.0])


class TestSGD:
    def test_vanilla_update(self):
        p = _quadratic_param(4.0)
        opt = nn.SGD([p], lr=0.25)
        _step(p, opt)
        np.testing.assert_allclose(p.data, [3.0])

    def test_momentum_accumulates(self):
        p = _quadratic_param(1.0)
        opt = nn.SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0]); opt.step()
        np.testing.assert_allclose(p.data, [0.9])
        p.grad = np.array([1.0]); opt.step()
        # velocity = 0.9*(-0.1) ... v1=-0.1 -> p 0.9; v2 = 0.9*v1 - ...
        # v2 = 0.9*(-0.1) + (-0.1) = -0.19 -> p = 0.71
        np.testing.assert_allclose(p.data, [0.71])

    def test_weight_decay(self):
        p = _quadratic_param(1.0)
        opt = nn.SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.9])

    def test_validates_momentum(self):
        with pytest.raises(ValueError):
            nn.SGD([_quadratic_param()], lr=0.1, momentum=1.0)

    def test_converges_on_quadratic(self):
        p = _quadratic_param(10.0)
        opt = nn.SGD([p], lr=0.3, momentum=0.5)
        _step(p, opt, steps=60)
        assert abs(float(p.data[0])) < 1e-3

    def test_state_dict_roundtrip(self):
        p = _quadratic_param()
        opt = nn.SGD([p], lr=0.1, momentum=0.9)
        _step(p, opt, 3)
        state = opt.state_dict()
        opt2 = nn.SGD([p], lr=0.5, momentum=0.1)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1
        assert opt2.momentum == 0.9
        np.testing.assert_allclose(opt2._velocity[0], opt._velocity[0])


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, |first step| ~= lr regardless of grad scale.
        for scale in (1e-3, 1.0, 1e3):
            p = Parameter(np.array([0.0]))
            opt = nn.Adam([p], lr=0.1)
            p.grad = np.array([scale])
            opt.step()
            np.testing.assert_allclose(abs(p.data[0]), 0.1, rtol=1e-4)

    def test_converges_on_quadratic(self):
        p = _quadratic_param(3.0)
        opt = nn.Adam([p], lr=0.2)
        _step(p, opt, steps=150)
        assert abs(float(p.data[0])) < 2e-2

    def test_validates_betas(self):
        with pytest.raises(ValueError):
            nn.Adam([_quadratic_param()], lr=0.1, betas=(1.0, 0.999))

    def test_weight_decay_moves_toward_zero(self):
        p = _quadratic_param(1.0)
        opt = nn.Adam([p], lr=0.01, weight_decay=10.0)
        p.grad = np.array([0.0])
        opt.step()
        assert float(p.data[0]) < 1.0

    def test_state_dict_roundtrip(self):
        p = _quadratic_param()
        opt = nn.Adam([p], lr=0.1)
        _step(p, opt, 5)
        state = opt.state_dict()
        opt2 = nn.Adam([p], lr=0.9)
        opt2.load_state_dict(state)
        assert opt2._step_count == 5
        np.testing.assert_allclose(opt2._m[0], opt._m[0])
        np.testing.assert_allclose(opt2._v[0], opt._v[0])


class TestSchedulers:
    def test_step_lr(self):
        p = _quadratic_param()
        opt = nn.SGD([p], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.1)
        sched.step(); sched.step()
        np.testing.assert_allclose(opt.lr, 0.01)

    def test_step_lr_validates(self):
        with pytest.raises(ValueError):
            nn.StepLR(nn.SGD([_quadratic_param()], lr=1.0), step_size=0)

    def test_exponential_lr(self):
        opt = nn.SGD([_quadratic_param()], lr=2.0)
        sched = nn.ExponentialLR(opt, gamma=0.5)
        sched.step()
        np.testing.assert_allclose(opt.lr, 1.0)
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.5)


class TestGradNorm:
    def _params(self, *grads):
        params = []
        for grad in grads:
            p = Parameter(np.zeros(np.shape(grad) or (1,)))
            p.grad = None if grad is None else np.asarray(grad, dtype=float)
            params.append(p)
        return params

    def test_global_norm(self):
        params = self._params([3.0, 0.0], [0.0, 4.0])
        np.testing.assert_allclose(nn.global_grad_norm(params), 5.0)

    def test_gradless_params_ignored(self):
        params = self._params([3.0], None)
        np.testing.assert_allclose(nn.global_grad_norm(params), 3.0)
        assert nn.global_grad_norm(self._params(None)) == 0.0

    def test_clip_scales_in_place(self):
        params = self._params([3.0, 0.0], [0.0, 4.0])
        norm = nn.clip_grad_norm_(params, max_norm=1.0)
        np.testing.assert_allclose(norm, 5.0)  # pre-clip norm returned
        np.testing.assert_allclose(nn.global_grad_norm(params), 1.0,
                                   rtol=1e-9)

    def test_no_clip_below_threshold(self):
        params = self._params([0.3, 0.4])
        norm = nn.clip_grad_norm_(params, max_norm=1.0)
        np.testing.assert_allclose(norm, 0.5)
        np.testing.assert_allclose(params[0].grad, [0.3, 0.4])

    def test_none_max_norm_only_measures(self):
        params = self._params([30.0])
        assert nn.clip_grad_norm_(params, None) == 30.0
        np.testing.assert_allclose(params[0].grad, [30.0])

    def test_nonfinite_norm_returned_unclipped(self):
        params = self._params([np.nan, 1.0])
        norm = nn.clip_grad_norm_(params, max_norm=1.0)
        assert not np.isfinite(norm)
        # Gradients are left as-is so the caller's divergence policy
        # decides, rather than silently zeroing the update.
        assert np.isnan(params[0].grad[0])
