"""Unit tests for module checkpointing."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def _net(seed):
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(),
                         nn.Linear(8, 2, rng=rng))


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        net_a, net_b = _net(1), _net(2)
        nn.save_state(net_a, path)
        nn.load_state(net_b, path)
        x = Tensor(np.random.default_rng(0).random((3, 4)))
        np.testing.assert_allclose(net_a(x).data, net_b(x).data)

    def test_extension_appended_on_load(self, tmp_path):
        path = str(tmp_path / "ckpt")
        net = _net(1)
        nn.save_state(net, path)  # numpy appends .npz
        other = _net(2)
        nn.load_state(other, path)  # should find ckpt.npz
        np.testing.assert_allclose(
            dict(net.named_parameters())["0.weight"].data,
            dict(other.named_parameters())["0.weight"].data)

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "ckpt.npz")
        nn.save_state(_net(1), path)
        import os
        assert os.path.exists(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            nn.load_state(_net(1), str(tmp_path / "nowhere.npz"))

    def test_corrupt_file_raises_clear_error(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        with open(path, "wb") as fh:
            fh.write(b"definitely not a zip archive")
        with pytest.raises(nn.CheckpointLoadError,
                           match="corrupt or truncated"):
            nn.load_state(_net(1), path)

    def test_truncated_file_raises_clear_error(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        nn.save_state(_net(1), path)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:len(blob) // 2])
        with pytest.raises(nn.CheckpointLoadError,
                           match="corrupt or truncated"):
            nn.load_state(_net(2), path)

    def test_architecture_mismatch_names_parameters(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        nn.save_state(_net(1), path)
        rng = np.random.default_rng(0)
        wider = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(),
                              nn.Linear(8, 2, rng=rng),
                              nn.Linear(2, 2, rng=rng))
        with pytest.raises(KeyError, match="3.weight"):
            nn.load_state(wider, path)

    def test_shape_mismatch_names_parameter(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        nn.save_state(_net(1), path)
        rng = np.random.default_rng(0)
        wrong_width = nn.Sequential(nn.Linear(4, 16, rng=rng), nn.ReLU(),
                                    nn.Linear(16, 2, rng=rng))
        with pytest.raises((KeyError, ValueError), match="0.weight"):
            nn.load_state(wrong_width, path)

    def test_batchnorm_buffers_preserved(self, tmp_path):
        rng = np.random.default_rng(0)
        bn = nn.BatchNorm2d(3)
        bn(Tensor(rng.normal(2.0, 1.0, size=(8, 3, 4, 4))))  # update stats
        path = str(tmp_path / "bn.npz")
        nn.save_state(bn, path)
        fresh = nn.BatchNorm2d(3)
        nn.load_state(fresh, path)
        np.testing.assert_allclose(fresh.running_mean, bn.running_mean)
        np.testing.assert_allclose(fresh.running_var, bn.running_var)
