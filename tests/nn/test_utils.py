"""Unit tests for nn training utilities."""

import numpy as np
import pytest

from repro import nn
from repro.nn.modules import Parameter
from repro.nn.utils import (clip_grad_norm, clip_grad_value,
                            global_grad_norm, parameter_summary)


def _params_with_grads():
    a = Parameter(np.zeros(4))
    b = Parameter(np.zeros((2, 2)))
    a.grad = np.full(4, 3.0)
    b.grad = np.full((2, 2), 4.0)
    return a, b


class TestGradNorm:
    def test_global_norm(self):
        a, b = _params_with_grads()
        # sqrt(4*9 + 4*16) = sqrt(100) = 10
        assert global_grad_norm([a, b]) == 10.0

    def test_missing_grads_counted_zero(self):
        a = Parameter(np.zeros(3))
        assert global_grad_norm([a]) == 0.0

    def test_clip_scales_down(self):
        a, b = _params_with_grads()
        norm = clip_grad_norm([a, b], max_norm=5.0)
        assert norm == 10.0
        assert abs(global_grad_norm([a, b]) - 5.0) < 1e-9

    def test_clip_noop_below_threshold(self):
        a, b = _params_with_grads()
        clip_grad_norm([a, b], max_norm=100.0)
        assert global_grad_norm([a, b]) == 10.0

    def test_clip_validates(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)

    def test_clip_value(self):
        a, b = _params_with_grads()
        clip_grad_value([a, b], limit=2.0)
        assert a.grad.max() == 2.0
        assert b.grad.max() == 2.0
        with pytest.raises(ValueError):
            clip_grad_value([a], limit=-1.0)


class TestParameterSummary:
    def test_lists_parameters_and_total(self):
        net = nn.Sequential(nn.Linear(3, 2, rng=np.random.default_rng(0)))
        summary = parameter_summary(net)
        assert "0.weight" in summary
        assert "total" in summary
        assert str(net.num_parameters()) in summary


class TestToDtype:
    def _model(self):
        return nn.Sequential(nn.Conv2d(1, 2, 3, padding=1),
                             nn.BatchNorm2d(2), nn.ReLU())

    def test_casts_parameters_buffers_and_grads(self):
        model = self._model()
        for p in model.parameters():
            p.grad = np.zeros_like(p.data)
        nn.to_dtype(model, np.float32)
        for p in model.parameters():
            assert p.data.dtype == np.float32
            assert p.grad.dtype == np.float32
        bn = model.layers[1]
        assert bn.running_mean.dtype == np.float32
        # The instance attribute and the registered buffer must be the
        # same array (BatchNorm forward reads the attribute).
        assert bn.running_mean is bn._buffers["running_mean"]

    def test_forward_stays_in_float32(self):
        model = self._model()
        model.eval()
        nn.to_dtype(model, np.float32)
        out = model(nn.Tensor(np.zeros((1, 1, 4, 4), dtype=np.float32)))
        assert out.data.dtype == np.float32

    def test_roundtrip_preserves_values(self, rng):
        model = self._model()
        reference = [p.data.copy() for p in model.parameters()]
        nn.to_dtype(model, np.float32)
        nn.to_dtype(model, np.float64)
        for p, ref in zip(model.parameters(), reference):
            assert p.data.dtype == np.float64
            np.testing.assert_allclose(p.data, ref, rtol=1e-7)

    def test_rejects_non_float(self):
        with pytest.raises(ValueError):
            nn.to_dtype(self._model(), np.int32)
