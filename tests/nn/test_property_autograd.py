"""Property-based tests for the autograd engine (hypothesis).

These check algebraic identities that must hold for *any* input, not
just hand-picked cases: linearity of the backward pass, the chain rule
through random op pipelines, and agreement with numerical
differentiation on randomly-shaped tensors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import Tensor

from ..conftest import numeric_gradient


def small_arrays(min_side=1, max_side=4):
    shapes = st.tuples(st.integers(min_side, max_side),
                       st.integers(min_side, max_side))
    return shapes.flatmap(
        lambda shape: hnp.arrays(np.float64, shape,
                                 elements=st.floats(-3, 3, width=32)))


class TestAlgebraicIdentities:
    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        t = Tensor(data.copy(), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(data))

    @given(small_arrays(), st.floats(-2, 2))
    @settings(max_examples=40, deadline=None)
    def test_backward_linear_in_upstream(self, data, scale):
        """backward(c * g) accumulates c * backward(g)."""
        a = Tensor(data.copy(), requires_grad=True)
        out = a * a
        out.backward(np.ones_like(data))
        base = a.grad.copy()

        b = Tensor(data.copy(), requires_grad=True)
        out2 = b * b
        out2.backward(scale * np.ones_like(data))
        np.testing.assert_allclose(b.grad, scale * base, rtol=1e-9,
                                   atol=1e-12)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_add_gradient_splits(self, data):
        a = Tensor(data.copy(), requires_grad=True)
        b = Tensor(data.copy(), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, b.grad)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_sigmoid_gradient_bounded(self, data):
        """sigmoid' = s(1-s) is bounded by 1/4."""
        t = Tensor(data.copy(), requires_grad=True)
        t.sigmoid().sum().backward()
        assert np.all(np.abs(t.grad) <= 0.25 + 1e-12)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_detach_blocks_everything(self, data):
        t = Tensor(data.copy(), requires_grad=True)
        (t.detach() * 3.0).sum().backward()
        assert t.grad is None


class TestNumericAgreement:
    @given(small_arrays(min_side=2, max_side=3))
    @settings(max_examples=15, deadline=None)
    def test_random_pipeline_matches_numeric(self, data):
        """tanh -> * -> sum pipeline agrees with finite differences."""
        a = Tensor(data.copy(), requires_grad=True)
        ((a.tanh() * a).sum()).backward()

        def objective():
            x = Tensor(data)
            return float((x.tanh() * x).data.sum())

        numeric = numeric_gradient(objective, data, eps=1e-6)
        np.testing.assert_allclose(a.grad, numeric, rtol=1e-4, atol=1e-6)

    @given(small_arrays(min_side=2, max_side=3),
           small_arrays(min_side=2, max_side=3))
    @settings(max_examples=15, deadline=None)
    def test_broadcast_mul_matches_numeric(self, a_data, b_row):
        b_data = b_row[:1]  # (1, k) row to broadcast over a's rows
        if a_data.shape[1] != b_data.shape[1]:
            width = min(a_data.shape[1], b_data.shape[1])
            a_data = a_data[:, :width]
            b_data = b_data[:, :width]
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        ((a * b) ** 2).sum().backward()

        def objective():
            return float(((a_data * b_data) ** 2).sum())

        np.testing.assert_allclose(
            b.grad, numeric_gradient(objective, b_data), rtol=1e-4,
            atol=1e-6)
