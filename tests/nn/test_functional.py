"""Unit tests for nn functional ops: convolutions, pooling, norm, losses."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.functional import col2im, im2col
from repro.nn.tensor import Tensor

from ..conftest import numeric_gradient


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, (3, 3), (1, 1), (1, 1))
        assert cols.shape == (2, 27, 64)

    def test_values_simple(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = im2col(x, (2, 2), (2, 2), (0, 0))
        # First patch is the top-left 2x2 block.
        np.testing.assert_allclose(cols[0, :, 0], [0, 1, 4, 5])

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 1, 2, 2)), (5, 5), (1, 1), (0, 0))

    def test_col2im_is_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining property the
        conv backward pass relies on."""
        shape = (2, 3, 6, 6)
        kernel, stride, padding = (3, 3), (2, 2), (1, 1)
        x = rng.normal(size=shape)
        cols = im2col(x, kernel, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, shape, kernel, stride, padding)).sum())
        assert abs(lhs - rhs) < 1e-9


class TestConv2d:
    def test_shape_stride_padding(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 9, 9)))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 5, 5, 5)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))),
                     Tensor(np.zeros((1, 3, 3, 3))))

    def test_identity_kernel(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, Tensor(w), padding=1)
        np.testing.assert_allclose(out.data, x.data)

    def test_matches_direct_computation(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        w = rng.normal(size=(1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        # Direct cross-correlation at (1, 1).
        expected = float((x[0, 0, 0:3, 0:3] * w[0, 0]).sum())
        assert abs(out[0, 0, 0, 0] - expected) < 1e-10

    def test_gradients_against_numeric(self, rng):
        x_data = rng.normal(size=(2, 2, 5, 5))
        w_data = rng.normal(size=(3, 2, 3, 3))
        b_data = rng.normal(size=(3,))

        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (F.conv2d(x, w, b, stride=2, padding=1) ** 2).sum().backward()

        def objective():
            out = F.conv2d(Tensor(x_data), Tensor(w_data), Tensor(b_data),
                           stride=2, padding=1)
            return float((out.data ** 2).sum())

        np.testing.assert_allclose(x.grad, numeric_gradient(objective, x_data),
                                   rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(w.grad, numeric_gradient(objective, w_data),
                                   rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(b.grad, numeric_gradient(objective, b_data),
                                   rtol=1e-4, atol=1e-7)


class TestConvTranspose2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 5, 5)))
        w = Tensor(rng.normal(size=(4, 2, 4, 4)))
        out = F.conv_transpose2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 2, 10, 10)

    def test_inverts_conv_shape(self, rng):
        """deconv(stride s) maps the conv(stride s) output shape back."""
        x = Tensor(rng.normal(size=(1, 1, 16, 16)))
        w_down = Tensor(rng.normal(size=(3, 1, 3, 3)))
        down = F.conv2d(x, w_down, stride=2, padding=1)
        w_up = Tensor(rng.normal(size=(3, 1, 4, 4)))
        up = F.conv_transpose2d(down, w_up, stride=2, padding=1)
        assert up.shape == (1, 1, 16, 16)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv_transpose2d(Tensor(np.zeros((1, 2, 4, 4))),
                               Tensor(np.zeros((3, 1, 3, 3))))

    def test_gradients_against_numeric(self, rng):
        x_data = rng.normal(size=(2, 2, 4, 4))
        w_data = rng.normal(size=(2, 3, 3, 3))
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        (F.conv_transpose2d(x, w, stride=2, padding=1,
                            output_padding=1) ** 2).sum().backward()

        def objective():
            out = F.conv_transpose2d(Tensor(x_data), Tensor(w_data), stride=2,
                                     padding=1, output_padding=1)
            return float((out.data ** 2).sum())

        np.testing.assert_allclose(x.grad, numeric_gradient(objective, x_data),
                                   rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(w.grad, numeric_gradient(objective, w_data),
                                   rtol=1e-4, atol=1e-7)

    def test_adjointness_with_conv(self, rng):
        """conv_transpose(w) is the adjoint of conv(w) (same layout)."""
        x = rng.normal(size=(1, 2, 8, 8))
        y = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        conv_out = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1).data
        # Transposed conv expects (in=3, out=2) layout = same array here.
        deconv_out = F.conv_transpose2d(Tensor(y), Tensor(w), stride=2,
                                        padding=1, output_padding=1).data
        lhs = float((conv_out * y).sum())
        rhs = float((x * deconv_out).sum())
        assert abs(lhs - rhs) / max(abs(lhs), 1.0) < 1e-9


class TestPooling:
    def test_avg_pool_exact(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient(self):
        x = Tensor(np.ones((1, 1, 4, 4)), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_max_pool_exact(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_to_argmax(self):
        data = np.zeros((1, 1, 2, 2))
        data[0, 0, 1, 1] = 5.0
        x = Tensor(data, requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((1, 1, 2, 2))
        expected[0, 0, 1, 1] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_upsample_nearest(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2),
                   requires_grad=True)
        out = F.upsample_nearest2d(x, 2)
        assert out.shape == (1, 1, 4, 4)
        np.testing.assert_allclose(out.data[0, 0, :2, :2], 1.0)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 2, 2), 4.0))


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        x = Tensor(rng.normal(3.0, 2.0, size=(8, 4, 5, 5)))
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        rm, rv = np.zeros(4), np.ones(4)
        out = F.batch_norm(x, gamma, beta, rm, rv, training=True)
        assert abs(out.data.mean()) < 1e-10
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_running_stats_updated(self, rng):
        x = Tensor(rng.normal(5.0, 1.0, size=(16, 2, 4, 4)))
        gamma, beta = Tensor(np.ones(2)), Tensor(np.zeros(2))
        rm, rv = np.zeros(2), np.ones(2)
        F.batch_norm(x, gamma, beta, rm, rv, training=True, momentum=1.0)
        np.testing.assert_allclose(rm, x.data.mean(axis=(0, 2, 3)), rtol=1e-10)

    def test_eval_uses_running_stats(self):
        x = Tensor(np.full((2, 1, 2, 2), 10.0))
        gamma, beta = Tensor(np.ones(1)), Tensor(np.zeros(1))
        rm, rv = np.array([10.0]), np.array([4.0])
        out = F.batch_norm(x, gamma, beta, rm, rv, training=False)
        np.testing.assert_allclose(out.data, 0.0, atol=1e-6)

    def test_2d_input(self, rng):
        x = Tensor(rng.normal(size=(10, 3)))
        gamma, beta = Tensor(np.ones(3)), Tensor(np.zeros(3))
        out = F.batch_norm(x, gamma, beta, np.zeros(3), np.ones(3),
                           training=True)
        assert out.shape == (10, 3)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            F.batch_norm(Tensor(np.zeros((2, 3, 4))), Tensor(np.ones(3)),
                         Tensor(np.zeros(3)), np.zeros(3), np.ones(3), True)

    def test_input_gradient_numeric(self, rng):
        x_data = rng.normal(size=(4, 2, 3, 3))
        gamma_data = rng.random(2) + 0.5
        beta_data = rng.normal(size=2)

        x = Tensor(x_data, requires_grad=True)
        gamma = Tensor(gamma_data, requires_grad=True)
        beta = Tensor(beta_data, requires_grad=True)
        out = F.batch_norm(x, gamma, beta, np.zeros(2), np.ones(2), True)
        (out ** 2).sum().backward()

        def objective():
            o = F.batch_norm(Tensor(x_data), Tensor(gamma_data),
                             Tensor(beta_data), np.zeros(2), np.ones(2), True)
            return float((o.data ** 2).sum())

        np.testing.assert_allclose(x.grad,
                                   numeric_gradient(objective, x_data, 1e-5),
                                   rtol=1e-3, atol=1e-6)
        np.testing.assert_allclose(gamma.grad,
                                   numeric_gradient(objective, gamma_data, 1e-5),
                                   rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(beta.grad,
                                   numeric_gradient(objective, beta_data, 1e-5),
                                   rtol=1e-4, atol=1e-6)


class TestLosses:
    def test_mse_reductions(self):
        p = Tensor([1.0, 3.0])
        t = Tensor([0.0, 0.0])
        assert float(F.mse_loss(p, t, "sum").data) == 10.0
        assert float(F.mse_loss(p, t, "mean").data) == 5.0
        assert F.mse_loss(p, t, "none").shape == (2,)
        with pytest.raises(ValueError):
            F.mse_loss(p, t, "bogus")

    def test_mse_sum_is_squared_l2(self, rng):
        a = rng.random((4, 4))
        b = rng.random((4, 4))
        loss = F.mse_loss(Tensor(a), Tensor(b), "sum")
        np.testing.assert_allclose(float(loss.data), ((a - b) ** 2).sum())

    def test_l1(self):
        loss = F.l1_loss(Tensor([2.0, -1.0]), Tensor([0.0, 0.0]), "sum")
        assert float(loss.data) == 3.0

    def test_bce_matches_formula(self):
        p = Tensor([0.8])
        t = Tensor([1.0])
        np.testing.assert_allclose(float(F.bce_loss(p, t).data),
                                   -np.log(0.8), rtol=1e-9)

    def test_bce_saturated_is_finite(self):
        loss = F.bce_loss(Tensor([0.0, 1.0]), Tensor([1.0, 0.0]))
        assert np.isfinite(float(loss.data))

    def test_bce_with_logits_matches_bce(self, rng):
        z = rng.normal(size=(6,))
        t = (rng.random(6) > 0.5).astype(float)
        direct = F.bce_with_logits(Tensor(z), Tensor(t))
        via_sigmoid = F.bce_loss(Tensor(z).sigmoid(), Tensor(t))
        np.testing.assert_allclose(float(direct.data),
                                   float(via_sigmoid.data), rtol=1e-6)

    def test_bce_with_logits_stable_at_extremes(self):
        loss = F.bce_with_logits(Tensor([100.0, -100.0]), Tensor([0.0, 1.0]))
        assert np.isfinite(float(loss.data))

    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        out = F.softmax(x, axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(3), rtol=1e-10)

    def test_linear(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        w = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2,)))
        out = F.linear(x, w, b)
        np.testing.assert_allclose(out.data, x.data @ w.data.T + b.data)
