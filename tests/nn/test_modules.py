"""Unit tests for the Module/layer system."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def _tiny_net(rng=None):
    rng = rng or np.random.default_rng(0)
    return nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 2, rng=rng),
    )


class TestModuleRegistration:
    def test_parameters_discovered_recursively(self):
        net = _tiny_net()
        names = [name for name, _ in net.named_parameters()]
        assert "0.weight" in names
        assert "1.gamma" in names
        assert "5.bias" in names

    def test_buffers_discovered(self):
        net = _tiny_net()
        buffer_names = [name for name, _ in net.named_buffers()]
        assert "1.running_mean" in buffer_names
        assert "1.running_var" in buffer_names

    def test_num_parameters(self):
        lin = nn.Linear(3, 2, rng=np.random.default_rng(0))
        assert lin.num_parameters() == 3 * 2 + 2

    def test_modules_iteration(self):
        net = _tiny_net()
        kinds = {type(m).__name__ for m in net.modules()}
        assert {"Sequential", "Conv2d", "BatchNorm2d"} <= kinds

    def test_zero_grad(self):
        net = _tiny_net()
        x = Tensor(np.random.default_rng(0).random((2, 1, 8, 8)))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestTrainEvalModes:
    def test_mode_propagates(self):
        net = _tiny_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_batchnorm_differs_between_modes(self):
        rng = np.random.default_rng(3)
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(5.0, 2.0, size=(8, 2, 4, 4)))
        train_out = bn(x).data.copy()
        bn.eval()
        eval_out = bn(x).data
        assert not np.allclose(train_out, eval_out)

    def test_dropout_identity_in_eval(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        x = Tensor(np.ones((4, 4)))
        drop.eval()
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_scales_in_train(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        # Keep rate should be near 50%.
        assert 0.4 < (out > 0).mean() < 0.6

    def test_dropout_validates_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestStateDict:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        net_a = _tiny_net(np.random.default_rng(1))
        net_b = _tiny_net(np.random.default_rng(2))
        x = Tensor(rng.random((2, 1, 8, 8)))
        net_a.eval(), net_b.eval()
        assert not np.allclose(net_a(x).data, net_b(x).data)
        net_b.load_state_dict(net_a.state_dict())
        np.testing.assert_allclose(net_a(x).data, net_b(x).data)

    def test_state_dict_copies(self):
        net = _tiny_net()
        state = net.state_dict()
        state["0.weight"][...] = 99.0
        assert not np.allclose(dict(net.named_parameters())["0.weight"].data, 99.0)

    def test_missing_key_raises(self):
        net = _tiny_net()
        state = net.state_dict()
        del state["0.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = _tiny_net()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = _tiny_net()
        state = net.state_dict()
        state["0.weight"] = np.zeros((1, 1, 1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestLayers:
    def test_linear_shapes(self, rng):
        lin = nn.Linear(5, 3, rng=rng)
        out = lin(Tensor(np.ones((4, 5))))
        assert out.shape == (4, 3)

    def test_linear_no_bias(self, rng):
        lin = nn.Linear(5, 3, bias=False, rng=rng)
        assert lin.bias is None
        assert lin(Tensor(np.zeros((1, 5)))).data.sum() == 0.0

    def test_conv_layer_shapes(self, rng):
        conv = nn.Conv2d(2, 6, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(np.ones((1, 2, 8, 8))))
        assert out.shape == (1, 6, 4, 4)

    def test_deconv_layer_shapes(self, rng):
        deconv = nn.ConvTranspose2d(6, 2, 4, stride=2, padding=1, rng=rng)
        out = deconv(Tensor(np.ones((1, 6, 4, 4))))
        assert out.shape == (1, 2, 8, 8)

    def test_activation_layers(self):
        x = Tensor(np.array([-1.0, 2.0]))
        assert nn.ReLU()(x).data.tolist() == [0.0, 2.0]
        np.testing.assert_allclose(nn.LeakyReLU(0.5)(x).data, [-0.5, 2.0])
        assert 0 < nn.Sigmoid()(x).data[0] < 0.5
        np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh([-1.0, 2.0]))

    def test_sequential_indexing(self):
        net = _tiny_net()
        assert isinstance(net[0], nn.Conv2d)
        assert len(net) == 6
        assert isinstance(list(net)[1], nn.BatchNorm2d)

    def test_avgpool_layer(self):
        pool = nn.AvgPool2d(2)
        out = pool(Tensor(np.ones((1, 1, 4, 4))))
        np.testing.assert_allclose(out.data, 1.0)

    def test_upsample_layer(self):
        up = nn.UpsampleNearest2d(3)
        assert up(Tensor(np.ones((1, 1, 2, 2)))).shape == (1, 1, 6, 6)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(Tensor([1.0]))


class TestEndToEndTraining:
    def test_small_classifier_overfits(self, rng):
        """Network + optimizer must drive BCE near zero on a tiny set —
        an integration check that all layer gradients cooperate."""
        net = nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4), nn.ReLU(), nn.MaxPool2d(2), nn.Flatten(),
            nn.Linear(4 * 8 * 8, 1, rng=rng), nn.Sigmoid())
        opt = nn.Adam(net.parameters(), lr=1e-2)
        x = Tensor(rng.random((8, 1, 16, 16)))
        y = Tensor((rng.random((8, 1)) > 0.5).astype(float))
        first = last = None
        for _ in range(40):
            opt.zero_grad()
            loss = nn.bce_loss(net(x), y)
            loss.backward()
            opt.step()
            first = first if first is not None else float(loss.data)
            last = float(loss.data)
        assert last < first * 0.2
