"""Convolution lowering economics: cached columns and workspace reuse.

The forward pass lowers patches with im2col once; the backward pass must
reuse those cached columns for the weight gradient instead of re-running
the gather (the gather is ~a third of a conv step's time).  In eval mode
the closure is dropped, so the columns may live in the module workspace
and be reused across calls.
"""

import numpy as np

from repro.nn import functional as F
from repro.nn import no_grad
from repro.nn.tensor import Tensor


def _counting_im2col(monkeypatch):
    calls = []
    original = F.im2col

    def wrapper(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(F, "im2col", wrapper)
    return calls


class TestColumnCaching:
    def test_conv2d_backward_reuses_forward_columns(self, monkeypatch, rng):
        calls = _counting_im2col(monkeypatch)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
        out = F.conv2d(x, w, stride=1, padding=1)
        assert len(calls) == 1
        (out ** 2).sum().backward()
        # The weight gradient contracts the cached columns: no re-gather.
        assert len(calls) == 1

    def test_conv_transpose2d_backward_gathers_once(self, monkeypatch, rng):
        calls = _counting_im2col(monkeypatch)
        x = Tensor(rng.normal(size=(2, 4, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
        out = F.conv_transpose2d(x, w, stride=2, padding=1)
        assert len(calls) == 0  # forward needs no gather
        (out ** 2).sum().backward()
        assert len(calls) == 1  # one gather of the incoming gradient

    def test_backward_matches_einsum_reference(self, rng):
        """The batched-matmul backward is the same math as the obvious
        einsum contraction."""
        x_data = rng.normal(size=(3, 2, 6, 6))
        w_data = rng.normal(size=(5, 2, 3, 3))
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        out = F.conv2d(x, w, stride=1, padding=1)
        grad_out = rng.normal(size=out.shape)
        out.backward(grad_out)

        cols = F.im2col(x_data, (3, 3), (1, 1), (1, 1))
        grad_flat = grad_out.reshape(3, 5, -1)
        ref_w = np.einsum("nfl,nkl->fk", grad_flat, cols).reshape(w_data.shape)
        np.testing.assert_allclose(w.grad, ref_w, rtol=1e-10, atol=1e-12)
        ref_cols = np.einsum("fk,nfl->nkl", w_data.reshape(5, -1), grad_flat)
        ref_x = F.col2im(ref_cols, x_data.shape, (3, 3), (1, 1), (1, 1))
        np.testing.assert_allclose(x.grad, ref_x, rtol=1e-10, atol=1e-12)


class TestInferenceWorkspace:
    def test_eval_mode_reuses_column_scratch(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        with no_grad():
            F.conv2d(x, w, padding=1)
            before = F._WORKSPACE.hits
            F.conv2d(x, w, padding=1)
        assert F._WORKSPACE.hits > before

    def test_grad_mode_never_touches_workspace(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
        before = (F._WORKSPACE.hits, F._WORKSPACE.misses)
        out = F.conv2d(x, w, padding=1)
        (out ** 2).sum().backward()
        assert (F._WORKSPACE.hits, F._WORKSPACE.misses) == before

    def test_eval_and_grad_results_identical(self, rng):
        x_data = rng.normal(size=(2, 3, 8, 8))
        w_data = rng.normal(size=(4, 3, 3, 3))
        with no_grad():
            eval_out = F.conv2d(Tensor(x_data), Tensor(w_data), padding=1)
            # Second call overwrites the scratch the first call used;
            # the first result must be a private copy.
            eval_out2 = F.conv2d(Tensor(2.0 * x_data), Tensor(w_data),
                                 padding=1)
        grad_out = F.conv2d(Tensor(x_data, requires_grad=True),
                            Tensor(w_data, requires_grad=True), padding=1)
        np.testing.assert_allclose(eval_out.data, grad_out.data,
                                   rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(eval_out2.data, 2.0 * grad_out.data,
                                   rtol=1e-12, atol=1e-12)
