"""Unit tests for the autograd Tensor core."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, _unbroadcast

from ..conftest import numeric_gradient


class TestBasics:
    def test_construction_defaults_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype in (np.float32, np.float64)
        assert t.shape == (3,)

    def test_requires_grad_flag(self):
        assert not Tensor([1.0]).requires_grad
        assert Tensor([1.0], requires_grad=True).requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3.0).detach()
        c = (b * 2.0).sum()
        c.backward()
        assert a.grad is None

    def test_item_and_len(self):
        assert Tensor([[5.0]]).item() == 5.0
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_backward_requires_scalar_without_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_rejects_wrong_shape_gradient(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = t * 2.0
        with pytest.raises(ValueError):
            out.backward(np.ones((3, 3)))

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * t).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


class TestArithmeticGradients:
    @pytest.mark.parametrize("op", [
        lambda a, b: a + b,
        lambda a, b: a - b,
        lambda a, b: a * b,
        lambda a, b: a / b,
    ])
    def test_binary_ops(self, op, rng):
        a_data = rng.normal(size=(3, 4)) + 3.0
        b_data = rng.normal(size=(3, 4)) + 3.0
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (op(a, b) ** 2).sum().backward()

        num_a = numeric_gradient(
            lambda: float((op(Tensor(a_data), Tensor(b_data)).data ** 2).sum()),
            a_data)
        num_b = numeric_gradient(
            lambda: float((op(Tensor(a_data), Tensor(b_data)).data ** 2).sum()),
            b_data)
        np.testing.assert_allclose(a.grad, num_a, rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(b.grad, num_b, rtol=1e-5, atol=1e-7)

    def test_broadcasting_backward(self, rng):
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4,))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        ((a + b) * 2.0).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, 6.0))

    def test_scalar_coercion(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (3.0 * a + 1.0 - a / 2.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [2.5, 2.5])

    def test_rsub_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        (1.0 - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        a.zero_grad()
        (1.0 / a).sum().backward()
        np.testing.assert_allclose(a.grad, [-0.25])

    def test_neg_and_pow(self, rng):
        data = rng.random((5,)) + 0.5
        a = Tensor(data, requires_grad=True)
        ((-a) ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, -3.0 * data ** 2, rtol=1e-10)

    def test_matmul_2d(self, rng):
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b_data.T)
        np.testing.assert_allclose(b.grad, a_data.T @ np.ones((3, 2)))

    def test_matmul_batched(self, rng):
        a_data = rng.normal(size=(2, 3, 4))
        b_data = rng.normal(size=(2, 4, 5))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        ((a @ b) ** 2).sum().backward()
        num = numeric_gradient(
            lambda: float(((a_data @ b_data) ** 2).sum()), a_data)
        np.testing.assert_allclose(a.grad, num, rtol=1e-5, atol=1e-7)

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a + a * 3.0).sum().backward()
        # d/da (a^2 + 3a) = 2a + 3 = 7
        np.testing.assert_allclose(a.grad, [7.0])

    def test_diamond_graph(self):
        # a feeds two paths that rejoin: gradient must sum once per path.
        a = Tensor([1.0], requires_grad=True)
        b = a * 2.0
        c = a * 3.0
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self, rng):
        data = rng.normal(size=(2, 6))
        a = Tensor(data, requires_grad=True)
        (a.reshape(3, 4) ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2.0 * data)

    def test_flatten(self):
        a = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        out = a.flatten(start_dim=1)
        assert out.shape == (2, 12)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_transpose_gradient(self, rng):
        data = rng.normal(size=(2, 3, 4))
        a = Tensor(data, requires_grad=True)
        (a.transpose(2, 0, 1) ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2.0 * data)

    def test_t_property(self):
        a = Tensor(np.ones((2, 5)))
        assert a.T.shape == (5, 2)

    def test_getitem_gradient(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a[2:5].sum().backward()
        np.testing.assert_allclose(a.grad, [0, 0, 1, 1, 1, 0])


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        data = rng.normal(size=(3, 4))
        a = Tensor(data, requires_grad=True)
        out = a.sum(axis=0, keepdims=True)
        assert out.shape == (1, 4)
        (out ** 2).sum().backward()
        expected = 2.0 * np.broadcast_to(data.sum(axis=0, keepdims=True), (3, 4))
        np.testing.assert_allclose(a.grad, expected)

    def test_mean_gradient(self):
        a = Tensor(np.ones((2, 5)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 5), 0.1))

    def test_mean_tuple_axis(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 1.0 / 12))

    def test_max_gradient_goes_to_argmax(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 0])

    def test_max_axis(self):
        a = Tensor([[1.0, 2.0], [4.0, 3.0]], requires_grad=True)
        out = a.max(axis=1)
        np.testing.assert_allclose(out.data, [2.0, 4.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [1, 0]])


class TestNonlinearities:
    @pytest.mark.parametrize("name", ["exp", "log", "sqrt", "abs", "sigmoid",
                                      "tanh", "relu"])
    def test_against_numeric(self, name, rng):
        data = rng.random((8,)) + 0.5  # positive, away from kinks
        a = Tensor(data.copy(), requires_grad=True)
        getattr(a, name)().sum().backward()
        num = numeric_gradient(
            lambda: float(getattr(Tensor(data), name)().data.sum()), data)
        np.testing.assert_allclose(a.grad, num, rtol=1e-5, atol=1e-7)

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor([-1000.0, 1000.0])
        out = a.sigmoid().data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_leaky_relu(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(a.grad, [0.1, 1.0])

    def test_clip_gradient_masks_outside(self):
        a = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 0])

    def test_relu_zero_at_negative(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])


class TestGraphOps:
    def test_concatenate_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = nn.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 2), 2.0))

    def test_stack(self):
        a = Tensor(np.ones((3,)), requires_grad=True)
        b = Tensor(np.zeros((3,)), requires_grad=True)
        out = nn.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        nn.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0, 1])
        np.testing.assert_allclose(b.grad, [0, 1, 0])

    def test_maximum(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        nn.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1])
        np.testing.assert_allclose(b.grad, [1, 0])

    def test_pad2d_gradient(self):
        a = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = nn.pad2d(a, (1, 2))
        assert out.shape == (1, 1, 4, 6)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((1, 1, 2, 2)))

    def test_pad2d_zero_is_identity(self):
        a = Tensor(np.ones((1, 1, 2, 2)))
        assert nn.pad2d(a, (0, 0)) is a


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert nn.is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with nn.no_grad():
                raise RuntimeError("boom")
        assert nn.is_grad_enabled()


class TestUnbroadcast:
    def test_noop_when_same_shape(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(_unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_sums_size_one_axes(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(_unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(_unbroadcast(g, ()), 6.0)
