"""Process-window objectives through the ILT optimizers."""

import numpy as np
import pytest

from repro.ilt import BatchedILTOptimizer, ILTConfig, ILTOptimizer
from repro.litho import ConditionSet, LithoEngine


@pytest.fixture(scope="module")
def target32():
    target = np.zeros((32, 32))
    target[12:20, 6:26] = 1.0
    return target


class TestObjectiveResolution:
    def test_config_rejects_unknown_objective(self):
        with pytest.raises(ValueError):
            ILTConfig(pw_objective="best")

    def test_conditions_upgrade_nominal_to_weighted(self, litho32,
                                                    kernels32):
        opt = ILTOptimizer(litho32, ILTConfig(max_iterations=2),
                           kernels=kernels32,
                           conditions=ConditionSet.dose_corners())
        assert opt.pw_objective == "weighted"

    def test_objective_without_conditions_gets_dose_band(self, litho32,
                                                         kernels32):
        opt = ILTOptimizer(litho32,
                           ILTConfig(max_iterations=2, pw_objective="worst"),
                           kernels=kernels32)
        assert opt.conditions is not None
        np.testing.assert_allclose(
            opt.conditions.doses,
            [1.0 - litho32.dose_variation, 1.0,
             1.0 + litho32.dose_variation])

    def test_nominal_stays_nominal(self, litho32, kernels32):
        opt = ILTOptimizer(litho32, ILTConfig(max_iterations=2),
                           kernels=kernels32)
        assert opt.conditions is None
        assert opt.pw_objective == "nominal"


class TestConditionDescent:
    def test_weighted_descent_converges(self, litho32, kernels32, target32):
        opt = ILTOptimizer(
            litho32, ILTConfig(max_iterations=20, pw_objective="weighted"),
            kernels=kernels32,
            conditions=ConditionSet.grid(defocuses=(0.0, 25.0),
                                         doses=(0.98, 1.02)))
        result = opt.optimize(target32)
        assert result.relaxed_history[-1] < result.relaxed_history[0]

    def test_worst_descent_reduces_worst_corner(self, litho32, kernels32,
                                                target32):
        conditions = ConditionSet.dose_corners(0.04)
        engine = LithoEngine.for_conditions(kernels32, conditions)
        opt = ILTOptimizer(
            litho32, ILTConfig(max_iterations=25, pw_objective="worst"),
            kernels=kernels32, conditions=conditions)
        result = opt.optimize(target32)
        before = engine.condition_litho_errors(target32, target32).max()
        after = engine.condition_litho_errors(result.mask, target32).max()
        assert after <= before

    def test_batched_matches_looped(self, litho32, kernels32, target32,
                                    rng):
        other = (rng.random((32, 32)) > 0.7).astype(float)
        targets = np.stack([target32, other])
        conditions = ConditionSet.dose_corners()
        cfg = ILTConfig(max_iterations=4, patience=None,
                        pw_objective="weighted")
        batched = BatchedILTOptimizer(litho32, cfg, kernels=kernels32,
                                      conditions=conditions)
        looped = ILTOptimizer(litho32, cfg, kernels=kernels32,
                              conditions=conditions)
        batch_result = batched.optimize(targets)
        for i, target in enumerate(targets):
            single = looped.optimize(target)
            np.testing.assert_allclose(batch_result.masks[i], single.mask)
