"""Unit tests for the batched ILT optimizer."""

import numpy as np
import pytest

from repro.ilt import BatchedILTOptimizer, ILTConfig, ILTOptimizer


def _targets(grid=32):
    targets = np.zeros((3, grid, grid))
    targets[0, 5:15, 4:28] = 1.0
    targets[1, 12:22, 4:28] = 1.0
    targets[2, 20:30, 6:26] = 1.0
    return targets


@pytest.fixture(scope="module")
def batched(litho32, kernels32):
    return BatchedILTOptimizer(litho32, ILTConfig(max_iterations=40),
                               kernels=kernels32)


class TestBatchedILT:
    def test_shapes(self, batched):
        result = batched.optimize(_targets())
        assert result.masks.shape == (3, 32, 32)
        assert result.l2.shape == (3,)
        assert result.iterations == 40
        assert result.runtime_seconds > 0

    def test_rejects_wrong_rank(self, batched):
        with pytest.raises(ValueError):
            batched.optimize(np.zeros((32, 32)))

    def test_rejects_wrong_grid(self, batched):
        with pytest.raises(ValueError):
            batched.optimize(np.zeros((2, 16, 16)))

    def test_masks_binary(self, batched):
        result = batched.optimize(_targets())
        assert set(np.unique(result.masks)) <= {0.0, 1.0}

    def test_improves_every_clip(self, batched, sim32):
        from repro.ilt.gradient import discrete_l2
        targets = _targets()
        result = batched.optimize(targets)
        for i in range(3):
            baseline = discrete_l2(sim32.wafer_image(targets[i]), targets[i])
            assert result.l2[i] <= baseline

    def test_matches_per_clip_optimizer(self, litho32, kernels32):
        """Batched semantics == looping the scalar optimizer with the
        same schedule (no early stopping)."""
        config = ILTConfig(max_iterations=30, patience=None)
        targets = _targets()
        batched = BatchedILTOptimizer(litho32, config,
                                      kernels=kernels32).optimize(targets)
        scalar = ILTOptimizer(litho32, config, kernels=kernels32)
        for i in range(3):
            single = scalar.optimize(targets[i])
            np.testing.assert_allclose(batched.l2[i], single.l2)
            np.testing.assert_array_equal(batched.masks[i], single.mask)

    def test_history_is_mean_relaxed_error(self, batched):
        result = batched.optimize(_targets(), max_iterations=5)
        assert len(result.relaxed_history) == 5
        assert all(np.isfinite(e) for e in result.relaxed_history)

    def test_single_clip_batch(self, batched):
        result = batched.optimize(_targets()[:1])
        assert result.masks.shape == (1, 32, 32)
