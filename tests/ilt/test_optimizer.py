"""Unit tests for the steepest-descent ILT engine."""

import numpy as np
import pytest

from repro.ilt import ILTConfig, ILTOptimizer


def _two_wires(grid=32):
    # Two 80nm wires at legal (>=60nm) spacing on the 8nm-pixel grid.
    target = np.zeros((grid, grid))
    target[5:15, 4:28] = 1.0
    target[23:31, 4:28] = 1.0
    return target


@pytest.fixture(scope="module")
def optimizer(litho32, kernels32):
    return ILTOptimizer(litho32, ILTConfig(max_iterations=80, patience=None),
                        kernels=kernels32)


class TestILTConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_iterations": 0},
        {"step_size": 0.0},
        {"momentum": 1.0},
        {"eval_interval": 0},
        {"pvb_weight": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ILTConfig(**kwargs)


class TestOptimize:
    def test_improves_over_target_mask(self, optimizer):
        """ILT must beat the no-OPC mask (print the target directly)."""
        target = _two_wires()
        result = optimizer.optimize(target)
        assert result.l2 < result.l2_history[0]
        assert result.l2 < 0.3 * result.l2_history[0] + 8

    def test_histories_recorded(self, optimizer):
        result = optimizer.optimize(_two_wires())
        assert len(result.relaxed_history) == result.iterations
        assert len(result.l2_history) >= 2

    def test_mask_is_binary(self, optimizer):
        result = optimizer.optimize(_two_wires())
        assert set(np.unique(result.mask)) <= {0.0, 1.0}

    def test_relaxed_mask_in_unit_interval(self, optimizer):
        result = optimizer.optimize(_two_wires())
        assert result.mask_relaxed.min() >= 0.0
        assert result.mask_relaxed.max() <= 1.0

    def test_grid_mismatch_rejected(self, optimizer):
        with pytest.raises(ValueError):
            optimizer.optimize(np.zeros((16, 16)))

    def test_max_iterations_override(self, optimizer):
        result = optimizer.optimize(_two_wires(), max_iterations=7)
        assert result.iterations == 7

    def test_stop_l2_early_stop(self, litho32, kernels32):
        config = ILTConfig(max_iterations=200, stop_l2=1e9, eval_interval=1)
        opt = ILTOptimizer(litho32, config, kernels=kernels32)
        result = opt.optimize(_two_wires())
        assert result.converged
        assert result.iterations == 1

    def test_patience_early_stop(self, litho32, kernels32):
        config = ILTConfig(max_iterations=500, patience=2, eval_interval=1,
                           step_size=1e-9)  # no progress possible
        opt = ILTOptimizer(litho32, config, kernels=kernels32)
        result = opt.optimize(_two_wires())
        assert result.converged
        assert result.iterations < 500

    def test_runtime_measured(self, optimizer):
        result = optimizer.optimize(_two_wires(), max_iterations=5)
        assert result.runtime_seconds > 0


class TestWarmStart:
    def test_initial_params_from_target(self, optimizer):
        target = _two_wires()
        params = optimizer.initial_params(target)
        assert params.min() == -optimizer.config.init_scale
        assert params.max() == optimizer.config.init_scale

    def test_initial_params_from_mask_roundtrip(self, optimizer, litho32):
        from repro.litho import sigmoid_mask
        target = _two_wires()
        warm = np.clip(target * 0.9 + 0.05, 0.0, 1.0)
        params = optimizer.initial_params(target, initial_mask=warm)
        np.testing.assert_allclose(
            sigmoid_mask(params, litho32.mask_steepness), warm, atol=1e-9)

    def test_refine_from_good_mask_converges_quickly(self, litho32,
                                                     kernels32):
        """Refinement from an already-optimized mask must not regress
        and should stop early."""
        target = _two_wires()
        full = ILTOptimizer(litho32, ILTConfig(max_iterations=80),
                            kernels=kernels32)
        first = full.optimize(target)
        refiner = ILTOptimizer(litho32,
                               ILTConfig(max_iterations=80, patience=3),
                               kernels=kernels32)
        refined = refiner.refine(target, first.mask, max_iterations=40)
        assert refined.l2 <= first.l2 + 4
        assert refined.iterations <= 40


class TestProcessWindowTerm:
    def test_pvb_weight_changes_result(self, litho32, kernels32):
        target = _two_wires()
        nominal = ILTOptimizer(litho32, ILTConfig(max_iterations=30),
                               kernels=kernels32).optimize(target)
        aware = ILTOptimizer(litho32,
                             ILTConfig(max_iterations=30, pvb_weight=0.5),
                             kernels=kernels32).optimize(target)
        # Different objective -> different relaxed trajectory.
        assert not np.allclose(nominal.relaxed_history, aware.relaxed_history)
