"""Unit tests for the ILT gradient (Eq. 14)."""

import numpy as np

from repro.ilt import (discrete_l2, litho_error_and_gradient,
                       litho_error_and_gradient_wrt_mask)
from repro.litho import sigmoid_mask


def _target(grid=32):
    target = np.zeros((grid, grid))
    target[12:22, 6:26] = 1.0
    return target


class TestDiscreteL2:
    def test_zero_for_equal(self):
        a = np.ones((4, 4))
        assert discrete_l2(a, a) == 0.0

    def test_counts_mismatches(self):
        a = np.zeros((4, 4))
        b = np.zeros((4, 4))
        b[0, 0] = b[1, 1] = 1.0
        assert discrete_l2(a, b) == 2.0


class TestGradientCorrectness:
    def test_finite_difference_full_gradient(self, litho32, kernels32, rng):
        """The analytic Eq. 14 gradient must match central differences of
        the relaxed error — the load-bearing correctness check for both
        the ILT engine and Algorithm 2 pre-training."""
        target = _target()
        params = rng.normal(scale=0.5, size=(32, 32))
        _, grad = litho_error_and_gradient(
            params, target, kernels32, litho32.threshold,
            litho32.resist_steepness, litho32.mask_steepness)

        eps = 1e-6
        positions = [(rng.integers(32), rng.integers(32)) for _ in range(12)]
        for i, j in positions:
            params[i, j] += eps
            upper, _ = litho_error_and_gradient(
                params, target, kernels32, litho32.threshold,
                litho32.resist_steepness, litho32.mask_steepness)
            params[i, j] -= 2 * eps
            lower, _ = litho_error_and_gradient(
                params, target, kernels32, litho32.threshold,
                litho32.resist_steepness, litho32.mask_steepness)
            params[i, j] += eps
            numeric = (upper - lower) / (2 * eps)
            assert abs(numeric - grad[i, j]) <= 1e-5 * max(abs(numeric), 1.0)

    def test_wrt_mask_finite_difference(self, litho32, kernels32, rng):
        target = _target()
        mask = rng.random((32, 32))
        _, grad = litho_error_and_gradient_wrt_mask(
            mask, target, kernels32, litho32.threshold,
            litho32.resist_steepness)
        eps = 1e-6
        for i, j in [(5, 5), (16, 16), (25, 10)]:
            mask[i, j] += eps
            upper, _ = litho_error_and_gradient_wrt_mask(
                mask, target, kernels32, litho32.threshold,
                litho32.resist_steepness)
            mask[i, j] -= 2 * eps
            lower, _ = litho_error_and_gradient_wrt_mask(
                mask, target, kernels32, litho32.threshold,
                litho32.resist_steepness)
            mask[i, j] += eps
            numeric = (upper - lower) / (2 * eps)
            assert abs(numeric - grad[i, j]) <= 1e-5 * max(abs(numeric), 1.0)

    def test_gradient_chain_rule_consistency(self, litho32, kernels32, rng):
        """Full gradient == mask-sigmoid slope * wrt-mask gradient."""
        target = _target()
        params = rng.normal(size=(32, 32))
        relaxed = sigmoid_mask(params, litho32.mask_steepness)
        _, grad_mask = litho_error_and_gradient_wrt_mask(
            relaxed, target, kernels32, litho32.threshold,
            litho32.resist_steepness)
        _, grad_full = litho_error_and_gradient(
            params, target, kernels32, litho32.threshold,
            litho32.resist_steepness, litho32.mask_steepness)
        expected = (litho32.mask_steepness * relaxed * (1 - relaxed)
                    * grad_mask)
        np.testing.assert_allclose(grad_full, expected, rtol=1e-12)

    def test_error_is_squared_l2_of_relaxed_wafer(self, litho32, kernels32,
                                                  sim32):
        target = _target()
        mask = target.copy()
        error, _ = litho_error_and_gradient_wrt_mask(
            mask, target, kernels32, litho32.threshold,
            litho32.resist_steepness)
        relaxed_wafer = sim32.relaxed_wafer(mask)
        np.testing.assert_allclose(error,
                                   np.sum((relaxed_wafer - target) ** 2),
                                   rtol=1e-10)

    def test_dose_parameter_shifts_error(self, litho32, kernels32):
        target = _target()
        mask = target.copy()
        nominal, _ = litho_error_and_gradient_wrt_mask(
            mask, target, kernels32, litho32.threshold,
            litho32.resist_steepness)
        overdose, _ = litho_error_and_gradient_wrt_mask(
            mask, target, kernels32, litho32.threshold,
            litho32.resist_steepness, dose=1.2)
        assert nominal != overdose

    def test_descent_direction(self, litho32, kernels32):
        """A small step against the gradient must not increase E."""
        target = _target()
        params = 1.0 * (2.0 * target - 1.0)
        error, grad = litho_error_and_gradient(
            params, target, kernels32, litho32.threshold,
            litho32.resist_steepness, litho32.mask_steepness)
        stepped = params - 1e-3 * grad
        new_error, _ = litho_error_and_gradient(
            stepped, target, kernels32, litho32.threshold,
            litho32.resist_steepness, litho32.mask_steepness)
        assert new_error <= error + 1e-9
