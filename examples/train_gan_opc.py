"""Train GAN-OPC and PGAN-OPC generators (Algorithms 1 and 2).

The full training recipe of the paper at a configurable scale:

1. synthesize a training library under the Table 1 design rules and
   build ILT reference masks for it (the expensive offline stage);
2. train a GAN-OPC generator from random initialization (Algorithm 1);
3. train a PGAN-OPC generator: ILT-guided pre-training (Algorithm 2)
   followed by the same adversarial schedule;
4. plot both Figure 7-style curves (ASCII) and checkpoint the weights.

Run:       python examples/train_gan_opc.py [--scale quick|medium|full]
Outputs:   examples/output/train/{gan,pgan}.npz + curves.txt
"""

import argparse
import os

from repro import nn
from repro.bench import ExperimentConfig, Pipeline, ascii_curve, train_generators

OUT = os.path.join(os.path.dirname(__file__), "output", "train")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("quick", "medium", "full"),
                        default="medium",
                        help="experiment scale (default: medium, ~2 min)")
    args = parser.parse_args()
    config = {"quick": ExperimentConfig.quick,
              "medium": ExperimentConfig.medium,
              "full": ExperimentConfig}[args.scale]()

    print(f"scale={args.scale}: grid {config.grid}px, "
          f"{config.dataset_size} training clips, "
          f"{config.pretrain_iterations}+{config.gan_iterations} iterations")

    pipeline = Pipeline.build(config)
    print("building ILT reference masks (offline stage) ...")
    pipeline.dataset.precompute(progress=True)

    print("training GAN-OPC and PGAN-OPC ...")
    trained = train_generators(pipeline, verbose=True)

    gan_curve = ascii_curve(trained.gan_history.l2_to_reference,
                            title="GAN-OPC: L2 to ground truth vs step",
                            label="step")
    pgan_curve = ascii_curve(trained.pgan_history.l2_to_reference,
                             title="PGAN-OPC: L2 to ground truth vs step",
                             label="step")
    pre_curve = ascii_curve(trained.pretrain_history.litho_error,
                            title="Algorithm 2: litho error vs step",
                            label="step")
    print(gan_curve)
    print(pgan_curve)

    os.makedirs(OUT, exist_ok=True)
    nn.save_state(trained.gan, os.path.join(OUT, "gan.npz"))
    nn.save_state(trained.pgan, os.path.join(OUT, "pgan.npz"))
    with open(os.path.join(OUT, "curves.txt"), "w") as handle:
        handle.write("\n\n".join([pre_curve, gan_curve, pgan_curve]) + "\n")
    print(f"\ncheckpoints and curves written to {OUT}/")
    print("evaluate them with examples/full_flow_iccad.py --checkpoint "
          f"{OUT}/pgan.npz")


if __name__ == "__main__":
    main()
