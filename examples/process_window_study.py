"""Process-window study: how mask optimization buys dose/focus margin.

Goes beyond the paper's +-2% dose PVB: characterizes masks over a full
(dose x focus) grid and reports exposure latitude and depth of focus —
comparing the raw target mask, an SRAF-assisted mask, and an
ILT-optimized mask for the same clip.

Run:  python examples/process_window_study.py
"""


from repro.geometry import Layout, Rect, binarize, rasterize
from repro.ilt import ILTConfig, ILTOptimizer
from repro.litho import (LithoConfig, build_kernels, depth_of_focus,
                         exposure_latitude, process_window_matrix)
from repro.opc import assisted_mask_layout

GRID = 64


def main():
    litho = LithoConfig.small(GRID)
    kernels = build_kernels(litho)

    clip = Layout(extent=litho.extent_nm, rects=[
        Rect(96, 120, 416, 200),
        Rect(96, 312, 416, 392),
    ], name="pw-study")
    target = binarize(rasterize(clip, GRID))

    masks = {"no-OPC (target as mask)": target}
    masks["SRAF-assisted"] = binarize(
        rasterize(assisted_mask_layout(clip), GRID))
    ilt = ILTOptimizer(litho, ILTConfig(max_iterations=120), kernels=kernels)
    masks["ILT-optimized"] = ilt.optimize(target).mask

    doses = (0.94, 0.97, 1.0, 1.03, 1.06)
    defocuses = (0.0, 40.0, 80.0)
    tolerance = target.sum() * 0.10  # 10% of pattern area, in px

    print(f"tolerance: wafer L2 <= {tolerance:.0f} px")
    print(f"{'mask':28s} {'nominal L2':>11s} {'EL (dose)':>10s} "
          f"{'DoF (nm)':>9s}")
    for name, mask in masks.items():
        window = process_window_matrix(mask, target, litho, doses=doses,
                                       defocuses=defocuses)
        latitude = exposure_latitude(mask, target, litho, tolerance,
                                     dose_span=0.1, steps=21)
        dof = depth_of_focus(mask, target, litho, tolerance,
                             focus_span=120.0, steps=9)
        print(f"{name:28s} {window.nominal_error():11.0f} "
              f"{latitude:10.3f} {dof:9.0f}")

    print("\ndose x focus L2 matrix for the ILT mask "
          f"(rows: defocus {defocuses} nm, cols: dose {doses}):")
    window = process_window_matrix(masks["ILT-optimized"], target, litho,
                                   doses=doses, defocuses=defocuses)
    for row in window.l2_error:
        print("  " + "  ".join(f"{v:7.0f}" for v in row))


if __name__ == "__main__":
    main()
