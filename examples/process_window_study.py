"""Process-window study: how mask optimization buys dose/focus margin.

Goes beyond the paper's +-2% dose PVB: characterizes masks over a full
(dose x focus) grid and reports exposure latitude and depth of focus —
comparing the raw target mask, an SRAF-assisted mask, and an
ILT-optimized mask for the same clip.

The dose x focus grid is a :class:`~repro.litho.conditions.ConditionSet`
evaluated by one condition engine (built once, reused for every mask):
all corners share the mask spectrum, and each focus plane's kernel
stack comes from the kernel caches, so scoring three masks over a
5x3 grid costs three stacked forwards instead of 45 simulator runs.

Run:  python examples/process_window_study.py
"""

from repro.geometry import Layout, Rect, binarize, rasterize
from repro.ilt import ILTConfig, ILTOptimizer
from repro.litho import (ConditionSet, LithoEngine, build_kernels,
                         LithoConfig, depth_of_focus, exposure_latitude,
                         process_window_matrix)
from repro.opc import assisted_mask_layout

GRID = 64


def main(grid: int = GRID, ilt_iterations: int = 120,
         verbose: bool = True) -> dict:
    litho = LithoConfig.small(grid)
    kernels = build_kernels(litho)

    scale = litho.extent_nm / 512.0
    clip = Layout(extent=litho.extent_nm, rects=[
        Rect(96 * scale, 120 * scale, 416 * scale, 200 * scale),
        Rect(96 * scale, 312 * scale, 416 * scale, 392 * scale),
    ], name="pw-study")
    target = binarize(rasterize(clip, grid))

    masks = {"no-OPC (target as mask)": target}
    masks["SRAF-assisted"] = binarize(
        rasterize(assisted_mask_layout(clip), grid))
    ilt = ILTOptimizer(litho, ILTConfig(max_iterations=ilt_iterations),
                       kernels=kernels)
    masks["ILT-optimized"] = ilt.optimize(target).mask

    doses = (0.94, 0.97, 1.0, 1.03, 1.06)
    defocuses = (0.0, 40.0, 80.0)
    tolerance = target.sum() * 0.10  # 10% of pattern area, in px

    # One condition engine for the whole grid, shared by every mask.
    conditions = ConditionSet.grid(defocuses=defocuses, doses=doses)
    engine = LithoEngine.for_conditions(kernels, conditions)

    windows = {}
    if verbose:
        print(f"corner stack: {conditions.describe()}")
        print(f"tolerance: wafer L2 <= {tolerance:.0f} px")
        print(f"{'mask':28s} {'nominal L2':>11s} {'EL (dose)':>10s} "
              f"{'DoF (nm)':>9s}")
    for name, mask in masks.items():
        window = process_window_matrix(mask, target, litho, doses=doses,
                                       defocuses=defocuses, engine=engine)
        windows[name] = window
        latitude = exposure_latitude(mask, target, litho, tolerance,
                                     dose_span=0.1, steps=21)
        dof = depth_of_focus(mask, target, litho, tolerance,
                             focus_span=120.0, steps=9)
        if verbose:
            print(f"{name:28s} {window.nominal_error():11.0f} "
                  f"{latitude:10.3f} {dof:9.0f}")

    if verbose:
        print("\ndose x focus L2 matrix for the ILT mask "
              f"(rows: defocus {defocuses} nm, cols: dose {doses}):")
        for row in windows["ILT-optimized"].l2_error:
            print("  " + "  ".join(f"{v:7.0f}" for v in row))
    return windows


if __name__ == "__main__":
    main()
