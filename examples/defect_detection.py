"""Defect-detector walkthrough (Figure 2 of the paper).

Figure 2 argues that no single detector is a complete printability
metric: EPE misses necks and bridges; neck/bridge checks miss edge
displacement.  This example constructs wafer images exhibiting each
failure mode and runs all three detectors on each, printing a matrix
of which detector catches what.

Run:  python examples/defect_detection.py
"""


from repro.geometry import Layout, Rect, rasterize
from repro.metrics import detect_bridges, detect_necks, measure_epe

GRID = 64
EXTENT = 512.0  # 8nm pixels


def _two_wire_layout():
    return Layout(extent=EXTENT, rects=[
        Rect(64, 128, 448, 208),   # wire A (80nm tall)
        Rect(64, 304, 448, 384),   # wire B
    ])


def _perfect_wafer(layout):
    return rasterize(layout, GRID, antialias=False)


def scenario_perfect():
    layout = _two_wire_layout()
    return "perfect print", layout, _perfect_wafer(layout)


def scenario_edge_shift():
    """Uniform edge displacement: EPE fires, neck/bridge stay silent."""
    layout = _two_wire_layout()
    shifted = Layout(extent=EXTENT, rects=[
        r.translated(24.0, 0.0) for r in layout.rects])
    return "edge displacement (3px)", layout, _perfect_wafer(shifted)


def scenario_neck():
    """Local pinch: neck detector fires; sparse EPE points can miss it."""
    layout = _two_wire_layout()
    wafer = _perfect_wafer(layout)
    wafer[16:24, 30:33] = 0.0  # pinch wire A down to ~2px
    wafer[16:21, 30:33] = 0.0
    # Leave a 2px-tall strip connected.
    wafer[24:26, 30:33] = 1.0
    return "neck (local CD loss)", layout, wafer


def scenario_bridge():
    """Printed short between the wires: bridge detector fires."""
    layout = _two_wire_layout()
    wafer = _perfect_wafer(layout)
    wafer[16:48, 31:33] = 1.0  # vertical short
    return "bridge (short)", layout, wafer


def main():
    target_grid = GRID
    print(f"{'scenario':28s} {'EPE viol':>9s} {'necks':>6s} {'bridges':>8s}")
    for scenario in (scenario_perfect, scenario_edge_shift, scenario_neck,
                     scenario_bridge):
        name, layout, wafer = scenario()
        target = rasterize(layout, target_grid, antialias=False)
        epe = measure_epe(wafer, layout, threshold=10.0)
        necks = detect_necks(wafer, target, min_width_px=5)  # 40nm = CD/2
        bridges = detect_bridges(wafer, target)
        print(f"{name:28s} {epe.violations:9d} {len(necks):6d} "
              f"{len(bridges):8d}")

    print("\nAs in Figure 2: each detector sees a different failure mode —")
    print("which is why the paper optimizes the squared L2 of the full")
    print("wafer image instead of any single detector's count.")


if __name__ == "__main__":
    main()
