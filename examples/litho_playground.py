"""Lithography simulation playground.

Explores the imaging substrate directly: kernel spectra, aerial-image
profiles across a wire, dose sensitivity (the PV band mechanism), and
the effect of sub-resolution assist features (SRAFs) — the classic
trick the paper's Figure 1 alludes to with "inserting assist features".

Run:  python examples/litho_playground.py
Outputs: examples/output/litho/*.pgm
"""

import os

import numpy as np

from repro.bench import write_pgm
from repro.litho import LithoConfig, LithoSimulator, build_kernels
from repro.metrics import mask_pv_band

GRID = 128
OUT = os.path.join(os.path.dirname(__file__), "output", "litho")


def main():
    litho = LithoConfig.small(GRID)
    kernels = build_kernels(litho)
    simulator = LithoSimulator(litho, kernels)
    os.makedirs(OUT, exist_ok=True)

    # --- kernel gallery ------------------------------------------------
    spatial = kernels.spatial_kernels()
    print(f"{kernels.num_kernels} coherent kernels; weights "
          f"(top 5): {np.round(kernels.weights[:5], 4)}")
    for k in range(4):
        magnitude = np.abs(spatial[k])
        write_pgm(magnitude / magnitude.max(),
                  os.path.join(OUT, f"kernel_{k}.pgm"))

    # --- an isolated wire: intensity profile ---------------------------
    mask = np.zeros((GRID, GRID))
    mask[59:69, 24:104] = 1.0  # 80nm wire
    intensity = simulator.aerial(mask)
    profile = intensity[:, GRID // 2]
    peak = profile.max()
    print(f"\nisolated 80nm wire: peak intensity {peak:.3f} "
          f"(threshold {litho.threshold})")
    rows = np.nonzero(profile >= litho.threshold)[0]
    printed_cd = (rows[-1] - rows[0] + 1) * litho.pixel_nm if len(rows) else 0
    print(f"printed CD across the wire: {printed_cd:.0f} nm (drawn 80 nm)")

    # --- dose sensitivity = the PV band mechanism ----------------------
    for dose in (0.95, 1.0, 1.05):
        area = simulator.wafer_image(mask, dose=dose).sum()
        print(f"dose {dose:.2f}: printed area {area:.0f} px")
    print(f"PV band (+-2% dose): {mask_pv_band(simulator, mask):.0f} nm^2")

    # --- SRAF demonstration --------------------------------------------
    # Sub-resolution assist features: bars too small to print that
    # still brighten the main feature's image and flatten its dose
    # sensitivity.
    sraf = mask.copy()
    sraf[45:49, 24:104] = 1.0   # 32nm bars, below resolution
    sraf[79:83, 24:104] = 1.0
    plain_pvb = mask_pv_band(simulator, mask)
    sraf_pvb = mask_pv_band(simulator, sraf)
    sraf_intensity = simulator.aerial(sraf)
    sraf_wafer = simulator.wafer_image(sraf)
    bars_printed = sraf_wafer[45:49, :].sum() + sraf_wafer[79:83, :].sum()
    print(f"\nwith SRAFs: peak intensity {sraf_intensity.max():.3f} "
          f"(plain {intensity.max():.3f}), "
          f"PV band {sraf_pvb:.0f} nm^2 (plain {plain_pvb:.0f} nm^2), "
          f"assist bars printed {bars_printed:.0f} px (want 0)")

    write_pgm(intensity / intensity.max(), os.path.join(OUT, "aerial.pgm"))
    write_pgm(simulator.wafer_image(mask), os.path.join(OUT, "wafer.pgm"))
    write_pgm(sraf, os.path.join(OUT, "sraf_mask.pgm"))
    write_pgm(sraf_wafer, os.path.join(OUT, "sraf_wafer.pgm"))
    print(f"\nimages written to {OUT}/")


if __name__ == "__main__":
    main()
