"""Build a training library offline: the paper's Section 4 data stage.

Demonstrates the production path for the expensive offline work:

1. synthesize N design-rule-clean clips (Table 1 rules),
2. batch-optimize their reference masks with the vectorized ILT engine
   (one stacked FFT pipeline instead of N sequential runs),
3. legalize the masks with mask-rule cleanup (drop unwritable debris),
4. export clips as .glp and masks/targets as .pgm, plus a manifest.

Run:  python examples/build_training_library.py [--count 8] [--grid 64]
"""

import argparse
import os

import numpy as np

from repro.bench import write_pgm
from repro.geometry import binarize, glp, rasterize
from repro.ilt import BatchedILTOptimizer, ILTConfig
from repro.layoutgen import LayoutSynthesizer, TopologyConfig
from repro.litho import LithoConfig, build_kernels, save_kernels
from repro.opc import MrcConfig, check_mask, cleanup_mask

OUT = os.path.join(os.path.dirname(__file__), "output", "library")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=8)
    parser.add_argument("--grid", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    litho = LithoConfig.small(args.grid)
    kernels = build_kernels(litho)
    os.makedirs(OUT, exist_ok=True)
    save_kernels(kernels, os.path.join(OUT, "kernels.npz"))

    # 1. Synthesize.
    topo = TopologyConfig(extent=litho.extent_nm,
                          margin=min(120.0, litho.extent_nm / 8.0))
    clips = LayoutSynthesizer(topo).generate_batch(args.count,
                                                   seed=args.seed,
                                                   name_prefix="lib")
    targets = np.stack([binarize(rasterize(c, args.grid)) for c in clips])

    # 2. Batched ILT.
    print(f"optimizing {args.count} reference masks (batched ILT) ...")
    optimizer = BatchedILTOptimizer(litho, ILTConfig(max_iterations=120),
                                    kernels=kernels)
    result = optimizer.optimize(targets)
    print(f"done in {result.runtime_seconds:.1f}s; "
          f"mean L2 {result.l2.mean():.1f} px")

    # 3. MRC cleanup + 4. export.
    mrc = MrcConfig(min_area=320.0)
    manifest = ["# clip  area_nm2  ilt_l2_px  mrc_total_before  mrc_after"]
    for i, clip in enumerate(clips):
        mask = result.masks[i]
        before = check_mask(mask, litho.pixel_nm, mrc).total
        mask = cleanup_mask(mask, litho.pixel_nm, mrc)
        after = check_mask(mask, litho.pixel_nm, mrc).total

        glp.save(clip, os.path.join(OUT, f"{clip.name}.glp"))
        write_pgm(targets[i], os.path.join(OUT, f"{clip.name}.target.pgm"))
        write_pgm(mask, os.path.join(OUT, f"{clip.name}.mask.pgm"))
        manifest.append(f"{clip.name}  {clip.pattern_area:.0f}  "
                        f"{result.l2[i]:.0f}  {before}  {after}")

    manifest_path = os.path.join(OUT, "manifest.txt")
    with open(manifest_path, "w") as handle:
        handle.write("\n".join(manifest) + "\n")
    print("\n".join(manifest))
    print(f"\nlibrary written to {OUT}/")


if __name__ == "__main__":
    main()
