"""Evaluate the GAN-OPC flow on the ICCAD-13-substitute suite (Table 2).

Loads a trained generator checkpoint (or pre-trains a small one on the
fly), runs the Figure 6 flow on all ten substitute clips, compares
against from-scratch ILT, and writes the Figure 8-style gallery.

Run:  python examples/full_flow_iccad.py [--checkpoint path.npz]
                                         [--grid 64|128] [--clips N]
"""

import argparse
import os

import numpy as np

from repro import nn
from repro.bench import iccad13_suite, save_gallery
from repro.core import (GanOpcConfig, GanOpcFlow, ILTGuidedPretrainer,
                        MaskGenerator)
from repro.geometry import binarize, rasterize
from repro.ilt import ILTConfig, ILTOptimizer
from repro.layoutgen import SyntheticDataset
from repro.litho import LithoConfig, LithoSimulator, build_kernels
from repro.metrics import comparison_table, evaluate_mask

OUT = os.path.join(os.path.dirname(__file__), "output", "iccad")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--checkpoint", default=None,
                        help="generator .npz from train_gan_opc.py")
    parser.add_argument("--grid", type=int, default=64)
    parser.add_argument("--clips", type=int, default=10)
    args = parser.parse_args()

    litho = LithoConfig.small(args.grid)
    kernels = build_kernels(litho)
    simulator = LithoSimulator(litho, kernels)
    config = GanOpcConfig.small(args.grid)

    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(0))
    if args.checkpoint:
        print(f"loading generator from {args.checkpoint}")
        nn.load_state(generator, args.checkpoint)
    else:
        print("no checkpoint given: pre-training a small generator "
              "(Algorithm 2) ...")
        dataset = SyntheticDataset(litho, size=16, seed=1, kernels=kernels)
        ILTGuidedPretrainer(generator, litho, config, kernels=kernels).train(
            dataset, iterations=80, rng=np.random.default_rng(2))

    suite = iccad13_suite(litho)[: args.clips]
    ilt = ILTOptimizer(litho, ILTConfig(max_iterations=150), kernels=kernels)
    flow = GanOpcFlow(generator, litho,
                      ILTConfig(max_iterations=100, patience=4),
                      kernels=kernels)

    columns = {"ILT": [], "GAN-OPC flow": []}
    gallery_rows = [[], [], [], [], []]
    for clip in suite:
        target = binarize(rasterize(clip.layout, args.grid))
        print(f"optimizing {clip.name} ...")

        ilt_result = ilt.optimize(target)
        columns["ILT"].append(evaluate_mask(
            simulator, ilt_result.mask, target, layout=clip.layout,
            name=clip.name, runtime_seconds=ilt_result.runtime_seconds))

        flow_result = flow.optimize(target)
        columns["GAN-OPC flow"].append(evaluate_mask(
            simulator, flow_result.mask, target, layout=clip.layout,
            name=clip.name, runtime_seconds=flow_result.runtime_seconds))

        gallery_rows[0].append(ilt_result.mask)
        gallery_rows[1].append(flow_result.mask)
        gallery_rows[2].append(simulator.wafer_image(ilt_result.mask))
        gallery_rows[3].append(simulator.wafer_image(flow_result.mask))
        gallery_rows[4].append(target)

    print("\n" + comparison_table(columns, baseline="ILT"))

    os.makedirs(OUT, exist_ok=True)
    gallery_path = os.path.join(OUT, "figure8_gallery.pgm")
    save_gallery(gallery_rows, gallery_path)
    print(f"\ngallery written to {gallery_path}")
    print("rows: ILT masks / flow masks / ILT wafers / flow wafers / targets")


if __name__ == "__main__":
    main()
