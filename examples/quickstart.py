"""Quickstart: optimize one clip end to end with every engine.

Walks the whole stack in about a minute on a laptop CPU:

1. synthesize a design-rule-clean M1 clip (Table 1 rules),
2. simulate how it would print with *no* correction,
3. correct it with model-based OPC (the conventional flow of Fig. 1),
4. correct it with ILT (the paper's baseline [7]),
5. run the GAN-OPC flow: pre-train a small generator with lithography
   guidance (Algorithm 2), then generate + refine (Fig. 6),
6. score everything (squared L2, PV band) and save wafer images.

Run:  python examples/quickstart.py
"""

import os

import numpy as np

from repro.bench import write_pgm
from repro.core import (GanOpcConfig, GanOpcFlow, ILTGuidedPretrainer,
                        MaskGenerator)
from repro.geometry import binarize, rasterize
from repro.ilt import ILTConfig, ILTOptimizer
from repro.layoutgen import LayoutSynthesizer, SyntheticDataset, TopologyConfig
from repro.litho import LithoConfig, LithoSimulator, build_kernels
from repro.metrics import evaluate_mask
from repro.opc import MbOpcConfig, ModelBasedOPC

GRID = 64
OUT = os.path.join(os.path.dirname(__file__), "output", "quickstart")


def main(grid: int = GRID, mb_iterations: int = 8, ilt_iterations: int = 150,
         pretrain_iterations: int = 100, refine_iterations: int = 120,
         dataset_size: int = 12, out_dir: str = OUT) -> dict:
    litho = LithoConfig.small(grid)
    kernels = build_kernels(litho)
    simulator = LithoSimulator(litho, kernels)

    # 1. A clip to optimize.
    synthesizer = LayoutSynthesizer(
        TopologyConfig(extent=litho.extent_nm,
                       margin=min(60.0, litho.extent_nm / 8.0)))
    clip = synthesizer.generate(np.random.default_rng(5), name="quickstart")
    target = binarize(rasterize(clip, grid))
    print(f"clip: {len(clip)} shapes, {clip.pattern_area:.0f} nm^2 pattern")

    results = {}

    # 2. No correction: print the target as drawn.
    results["no-OPC"] = evaluate_mask(simulator, target, target,
                                      layout=clip, name="no-OPC")

    # 3. Model-based OPC.
    mb = ModelBasedOPC(litho, MbOpcConfig(iterations=mb_iterations),
                       kernels=kernels)
    mb_result = mb.optimize(clip)
    results["MB-OPC"] = evaluate_mask(
        simulator, mb_result.mask, target, layout=clip, name="MB-OPC",
        runtime_seconds=mb_result.runtime_seconds)

    # 4. ILT from scratch.
    ilt = ILTOptimizer(litho, ILTConfig(max_iterations=ilt_iterations),
                       kernels=kernels)
    ilt_result = ilt.optimize(target)
    results["ILT"] = evaluate_mask(
        simulator, ilt_result.mask, target, layout=clip, name="ILT",
        runtime_seconds=ilt_result.runtime_seconds)

    # 5. GAN-OPC: lithography-guided pre-training on a small synthetic
    #    library, then generate + refine.  (A real deployment trains
    #    Algorithm 1 on top — see train_gan_opc.py.)
    config = GanOpcConfig.small(grid)
    generator = MaskGenerator(config.generator_channels,
                              rng=np.random.default_rng(0))
    dataset = SyntheticDataset(litho, size=dataset_size, seed=1,
                               kernels=kernels)
    print("pre-training the generator with lithography guidance ...")
    ILTGuidedPretrainer(generator, litho, config, kernels=kernels).train(
        dataset, iterations=pretrain_iterations,
        rng=np.random.default_rng(2))
    flow = GanOpcFlow(generator, litho,
                      ILTConfig(max_iterations=refine_iterations, patience=8),
                      kernels=kernels)
    flow_result = flow.optimize(target)
    results["GAN-OPC"] = evaluate_mask(
        simulator, flow_result.mask, target, layout=clip, name="GAN-OPC",
        runtime_seconds=flow_result.runtime_seconds)

    # 6. Report.
    print(f"\n{'method':10s} {'L2 (nm^2)':>10s} {'PVB (nm^2)':>11s} "
          f"{'EPE viol':>9s} {'RT (s)':>7s}")
    for name, ev in results.items():
        rt = f"{ev.runtime_seconds:7.2f}" if ev.runtime_seconds else "      -"
        print(f"{name:10s} {ev.l2_nm2:10.0f} {ev.pvband_nm2:11.0f} "
              f"{ev.epe_violations:9d} {rt}")

    os.makedirs(out_dir, exist_ok=True)
    write_pgm(target, os.path.join(out_dir, "target.pgm"))
    write_pgm(ilt_result.mask, os.path.join(out_dir, "ilt_mask.pgm"))
    write_pgm(flow_result.mask, os.path.join(out_dir, "ganopc_mask.pgm"))
    write_pgm(simulator.wafer_image(flow_result.mask),
              os.path.join(out_dir, "ganopc_wafer.pgm"))
    print(f"\nimages written to {out_dir}/")
    return results


if __name__ == "__main__":
    main()
